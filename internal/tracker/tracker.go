package tracker

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// Tracker is the online mobility tracker: it consumes the positional
// stream slide by slide, maintains per-vessel motion state entirely in
// main memory without index support (paper §2), and emits annotated
// critical points. Detection of instantaneous events and gaps is O(1)
// per incoming tuple; long-lasting events cost O(m) over the m most
// recent positions (paper §3.1).
//
// The ingest path is columnar: fixes arrive as scalar (MMSI, lon, lat,
// UnixNano) tuples — read straight out of an ais.FixBatch's parallel
// arrays or adapted from row-oriented ais.Fix values — and all internal
// clocks are int64 nanoseconds. Emitted critical points carry time.Time
// values rebuilt with time.Unix(0, ns).UTC(), which is structurally
// identical to the times the row path carried, so the two ingest forms
// produce byte-identical output.
type Tracker struct {
	params  Params
	window  stream.WindowSpec
	vessels map[uint32]*vesselState
	stats   Stats

	// Slide-scoped scratch, reused across slides so the hot path does
	// not re-allocate per slide. fresh holds the emissions of the
	// current slide; delta and gapScan back eviction and the slide-time
	// gap sweep.
	fresh     []CriticalPoint
	delta     []CriticalPoint
	deltaKey  []deltaSortKey
	deltaOut  []CriticalPoint
	gapScan   []uint32
	evictScan []uint32

	// Emission indexing, enabled only when the tracker runs as one
	// shard of a Sharded tier: freshIdx records, parallel to fresh, the
	// batch index of the fix that triggered each emission, so the
	// sharded merge can restore global batch order exactly. curIdx is
	// the index of the fix being ingested (gapSentinel outside ingest).
	indexing bool
	curIdx   int32
	freshIdx []int32

	// lastQueryNS is the query time that closed the previous slide: the
	// boundary against which accepted fixes are classified as late.
	lastQueryNS int64
	haveLastQ   bool

	// adaptive, when non-nil, supplies per-vessel-class threshold
	// multipliers (see adaptive.go). Nil keeps the default fixed
	// thresholds on a branch-free path.
	adaptive *AdaptiveState

	// Tier-shared accounting, wired by NewSharded (nil on a standalone
	// tracker, and nil while a journal replay rebuilds a shard so the
	// replay does not double-count). Atomics because core.Health and
	// metric scrapes read them from other goroutines mid-slide.
	lateAcc  *atomic.Int64
	lateDrop *atomic.Int64
	shedCnt  *atomic.Int64
	shed     *atomic.Bool
}

// gapSentinel tags emissions not attributable to a fix: the slide-time
// gap sweep runs after every fix of the batch, so its emissions sort
// after all ingest-time ones.
const gapSentinel = int32(1<<31 - 1)

// nsTime rebuilds the time.Time for an internal nanosecond clock value.
// For UTC instants within time.Unix's normalization range this yields a
// struct identical to the original fix time.
func nsTime(ns int64) time.Time { return time.Unix(0, ns).UTC() }

// velEntry is one sample of the recent-velocity window. Heading trig is
// not cached here: the outlier gate's speed test rejects almost every
// fix before the heading fold runs, so SinCosDeg is paid per entry only
// inside that rare fold (recentMeanHeading) instead of once per ingested
// fix.
type velEntry struct {
	v geo.Velocity
}

// runFix is one member of a stop or slow run: position plus nanosecond
// timestamp.
type runFix struct {
	pos geo.Point
	tns int64
}

// vesselState is the per-vessel in-memory motion state.
type vesselState struct {
	mmsi     uint32
	haveLast bool
	lastPos  geo.Point
	lastTNS  int64
	lastTrig geo.LatTrig // sin/cos of lastPos.Lat, cached for the next hop

	vPrev geo.Velocity
	haveV bool

	recent []velEntry // up to M latest velocity vectors (mean course)

	outlierRun int
	gapOpen    bool

	// Long-term stop run: consecutive low-speed fixes, with incremental
	// centroid sums and a bounding box so the within-radius check is
	// O(1) when the run obviously fits (see stopWithin).
	stopRun    []runFix
	stopped    bool
	stopSumLon float64
	stopSumLat float64
	stopMinLon float64
	stopMaxLon float64
	stopMinLat float64
	stopMaxLat float64

	// Slow-motion run: consecutive slow (but moving) fixes.
	slowRun []runFix
	slow    bool

	recentTurns []float64 // signed heading deltas of the last m steps

	// Odometers (the §3.1 extension the paper plans: "capture additional
	// features, such as traveled distance from a given origin"): total
	// accepted-hop distance, and distance since the vessel last departed
	// — i.e. since its last long-term stop ended.
	odometerM  float64
	departureM float64

	// mult is the adaptive threshold multiplier resolved at the last
	// ingest (1 when adaptive compression is off).
	mult float64

	synopsis   stream.TimeBuffer[CriticalPoint]
	lastSeenNS int64
	haveSeen   bool
}

// setLast advances the vessel clock and position, caching the latitude
// trig for the next hop.
func (st *vesselState) setLast(pos geo.Point, tns int64, trig geo.LatTrig) {
	st.lastPos = pos
	st.lastTNS = tns
	st.lastTrig = trig
	st.lastSeenNS = tns
	st.haveSeen = true
}

// New returns a tracker with the given parameters and window. It panics
// on invalid configuration, which is a programming error.
func New(params Params, window stream.WindowSpec) *Tracker {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("tracker: %v", err))
	}
	if err := window.Validate(); err != nil {
		panic(fmt.Sprintf("tracker: %v", err))
	}
	return &Tracker{
		params:  params,
		window:  window,
		vessels: make(map[uint32]*vesselState),
		stats:   Stats{ByType: make(map[EventType]int)},
	}
}

// Params returns the tracker's parameters.
func (tr *Tracker) Params() Params { return tr.params }

// Stats returns a snapshot of the counters.
func (tr *Tracker) Stats() Stats {
	s := tr.stats
	s.ByType = make(map[EventType]int, len(tr.stats.ByType))
	for k, v := range tr.stats.ByType {
		s.ByType[k] = v
	}
	return s
}

// SlideResult is the output of one window slide.
type SlideResult struct {
	// Query is the query time Q_i closing this slide.
	Query time.Time
	// Fresh contains the critical points detected during this slide, in
	// emission order — the input of complex event recognition.
	Fresh []CriticalPoint
	// Delta contains critical points that expired from the sliding
	// window at this query time and move to the staging area for offline
	// trajectory reconstruction (paper §3.2).
	Delta []CriticalPoint
}

// Slide processes one batch: it updates the window with fresh
// positions, detects trajectory events, performs slide-time gap
// detection, and evicts expired critical points and stale vessels.
// The returned slices are copies the caller may retain freely; the
// sharded tier uses the scratch-backed internal phases instead.
func (tr *Tracker) Slide(b stream.Batch) SlideResult {
	tr.beginSlide()
	if b.Cols != nil {
		cols := b.Cols
		for i := range cols.MMSI {
			tr.curIdx = int32(i)
			tr.ingest(cols.MMSI[i], cols.Lon[i], cols.Lat[i], cols.TimeNS[i])
		}
	} else {
		for i, f := range b.Fixes {
			tr.curIdx = int32(i)
			tr.ingestFix(f)
		}
	}
	_, delta := tr.finishSlide(b.Query)

	out := SlideResult{Query: b.Query}
	if len(tr.fresh) > 0 {
		out.Fresh = append([]CriticalPoint(nil), tr.fresh...)
	}
	if len(delta) > 0 {
		out.Delta = append([]CriticalPoint(nil), delta...)
	}
	return out
}

// beginSlide resets the slide-scoped scratch.
func (tr *Tracker) beginSlide() {
	tr.fresh = tr.fresh[:0]
	tr.freshIdx = tr.freshIdx[:0]
	tr.curIdx = gapSentinel
}

// ingestFix processes one row-oriented fix.
func (tr *Tracker) ingestFix(f ais.Fix) {
	tr.ingest(f.MMSI, f.Pos.Lon, f.Pos.Lat, f.Time.UnixNano())
}

// ingestIndexed processes one row fix tagged with its global batch
// index, the sharded tier's row-path ingest entry point.
func (tr *Tracker) ingestIndexed(f ais.Fix, idx int32) {
	tr.curIdx = idx
	tr.ingestFix(f)
}

// ingestColsIndexed processes fix i of a columnar batch tagged with its
// global batch index.
func (tr *Tracker) ingestColsIndexed(cols *ais.FixBatch, i int32) {
	tr.curIdx = i
	tr.ingest(cols.MMSI[i], cols.Lon[i], cols.Lat[i], cols.TimeNS[i])
}

// finishSlide runs the per-slide phases that follow ingestion: the
// slide-time gap sweep and window eviction. It returns the offset into
// fresh where the gap-sweep emissions start (they are ordered by MMSI,
// while fresh[:gapStart] is ordered by triggering fix) and the expired
// delta points. Both fresh and delta are tracker-owned scratch, valid
// until the next slide.
func (tr *Tracker) finishSlide(q time.Time) (gapStart int, delta []CriticalPoint) {
	tr.curIdx = gapSentinel
	gapStart = len(tr.fresh)
	tr.collectSweeps(q)
	tr.detectGaps(q)
	delta = tr.evict(q)
	tr.lastQueryNS = q.UnixNano()
	tr.haveLastQ = true
	return gapStart, delta
}

// collectSweeps walks the vessel map once, gathering the candidates of
// both slide-closing phases: vessels due a gap-start emission and
// vessels with window-expired synopsis points or stale state. Collecting
// before the gap sweep runs is exact: sweep emissions are stamped at a
// vessel's last-fix time, so a vessel whose clock is inside the window
// range cannot gain expired points from the sweep, and one whose clock
// is outside it is already a full-eviction candidate.
func (tr *Tracker) collectSweeps(q time.Time) {
	qns := q.UnixNano()
	gapNS := int64(tr.params.GapPeriod)
	cutoff := q.Add(-tr.window.Range)
	cutoffNS := cutoff.UnixNano()
	tr.gapScan = tr.gapScan[:0]
	tr.evictScan = tr.evictScan[:0]
	for mmsi, st := range tr.vessels {
		if st.haveLast && !st.gapOpen && qns-st.lastTNS >= gapNS {
			tr.gapScan = append(tr.gapScan, mmsi)
		}
		if st.lastSeenNS <= cutoffNS {
			tr.evictScan = append(tr.evictScan, mmsi)
		} else if ts, ok := st.synopsis.Oldest(); ok && !ts.After(cutoff) {
			tr.evictScan = append(tr.evictScan, mmsi)
		}
	}
}

// emit records a critical point.
func (tr *Tracker) emit(st *vesselState, cp CriticalPoint) {
	tr.stats.Critical++
	tr.stats.ByType[cp.Type]++
	tr.fresh = append(tr.fresh, cp)
	if tr.indexing {
		tr.freshIdx = append(tr.freshIdx, tr.curIdx)
	}
	st.synopsis.Append(cp.Time, cp)
}

// noteLateAccepted counts an admitted fix whose timestamp precedes the
// last query time: it belongs to an already-closed slide but still
// advances its vessel's clock, so it is processed rather than dropped.
func (tr *Tracker) noteLateAccepted(tns int64) {
	if tr.haveLastQ && tns < tr.lastQueryNS {
		tr.stats.LateAccepted++
		if tr.lateAcc != nil {
			tr.lateAcc.Add(1)
		}
	}
}

// stopRadiusFor resolves the effective stop radius for a vessel outside
// the ingest path (gap sweep, run closure).
func (tr *Tracker) stopRadiusFor(st *vesselState) float64 {
	if tr.adaptive != nil {
		return tr.params.StopRadiusMeters * st.mult
	}
	return tr.params.StopRadiusMeters
}

// ingest processes one fix given as scalar column values.
func (tr *Tracker) ingest(mmsi uint32, lon, lat float64, tns int64) {
	tr.stats.FixesIn++
	st := tr.vessels[mmsi]
	if st == nil {
		// Presize the ring-style scratch to its steady-state capacity (the
		// recent/turn windows are bounded by M; stop and slow runs hover
		// around it) so a new vessel does not pay a growslice ladder on its
		// first dozen fixes.
		m := tr.params.M
		st = &vesselState{
			mmsi: mmsi, mult: 1,
			recent:      make([]velEntry, 0, m),
			recentTurns: make([]float64, 0, m),
			stopRun:     make([]runFix, 0, 2*m),
			slowRun:     make([]runFix, 0, 2*m),
		}
		tr.vessels[mmsi] = st
	}
	pos := geo.Point{Lon: lon, Lat: lat}
	if !st.haveLast {
		st.setLast(pos, tns, geo.LatTrigOf(pos))
		st.haveLast = true
		tr.noteLateAccepted(tns)
		tr.emit(st, CriticalPoint{MMSI: mmsi, Pos: pos, Time: nsTime(tns), Type: EventFirst})
		return
	}
	if tns <= st.lastTNS {
		tr.stats.Duplicates++
		if tns < st.lastTNS {
			// Behind the vessel's own clock: a reordered fix that cannot
			// be sequenced any more.
			tr.stats.LateDropped++
			if tr.lateDrop != nil {
				tr.lateDrop.Add(1)
			}
		}
		return
	}
	tr.noteLateAccepted(tns)

	p := &tr.params
	dt := time.Duration(tns - st.lastTNS)
	trig := geo.LatTrigOf(pos)

	// Adaptive compression (opt-in): scale the emission thresholds by
	// the vessel-class multiplier. With adaptive off the defaults pass
	// through untouched.
	turnThr, speedFrac, stopRadius := p.TurnThresholdDeg, p.SpeedChangeFrac, p.StopRadiusMeters
	if tr.adaptive != nil {
		m := tr.adaptive.multFor(st.vPrev.SpeedKnots, st.haveV)
		st.mult = m
		turnThr *= m
		speedFrac = min(speedFrac*m, 1)
		stopRadius *= m
	}

	// Overload shedding (degradation ladder L3): while the pipeline is
	// shedding, positions of long-stopped vessels only advance the
	// vessel clock — no event detection, no synopsis growth. A fix that
	// leaves the stop circle (or a communication gap) re-enters the full
	// path so departures are still caught.
	if st.stopped && tr.shed != nil && tr.shed.Load() &&
		dt < p.GapPeriod && geo.HaversineCached(st.lastPos, pos, st.lastTrig, trig) <= stopRadius {
		tr.stats.Shed++
		if tr.shedCnt != nil {
			tr.shedCnt.Add(1)
		}
		st.setLast(pos, tns, trig)
		return
	}

	// Communication gap closed by this fix (it may also have been opened
	// at a slide boundary while the vessel was silent).
	if dt >= p.GapPeriod || st.gapOpen {
		if !st.gapOpen {
			tr.closeRuns(st, st.lastTNS, stopRadius)
			tr.emit(st, CriticalPoint{
				MMSI: mmsi, Pos: st.lastPos, Time: nsTime(st.lastTNS), Type: EventGapStart,
			})
		}
		st.gapOpen = false
		tr.emit(st, CriticalPoint{MMSI: mmsi, Pos: pos, Time: nsTime(tns), Type: EventGapEnd})
		// Count the chord across the silence: the true path is unknown
		// but at least this far was covered.
		hop := geo.HaversineCached(st.lastPos, pos, st.lastTrig, trig)
		st.odometerM += hop
		st.departureM += hop
		// The course across the silence is unknown: restart motion state.
		st.haveV = false
		st.recent = st.recent[:0]
		st.recentTurns = st.recentTurns[:0]
		st.outlierRun = 0
		st.setLast(pos, tns, trig)
		return
	}

	if dt <= 0 {
		// Unreachable (non-advancing timestamps returned above); kept as
		// the row path's "velocity unknown" guard.
		tr.stats.Duplicates++
		return
	}
	vNow, dist := geo.VelocityDistBetween(st.lastPos, pos, dt, st.lastTrig, trig)

	// Off-course outlier rejection (paper Figure 2(d)): an abrupt change
	// in both speed and heading relative to the mean velocity over the
	// previous m positions marks a temporary deviation to discard. The
	// absolute speed floor is checked first so the mean fold only runs
	// for fixes fast enough to ever be outliers.
	if !p.DisableOutlierFilter && vNow.SpeedKnots > p.OutlierMinKnots && len(st.recent) >= p.M/2 {
		// The speed test alone settles nearly every fix; the heading fold
		// (per-entry trig plus an atan2) only runs once the speed factor
		// is exceeded. Short-circuit order matches the combined fold, so
		// accepted/rejected decisions are identical.
		ref := max(recentMeanSpeed(st.recent), 1)
		if vNow.SpeedKnots > p.OutlierSpeedFactor*ref &&
			geo.HeadingDelta(vNow.HeadingDeg, recentMeanHeading(st.recent)) > p.OutlierHeadingDeg {
			st.outlierRun++
			if st.outlierRun < p.OutlierRunLimit {
				tr.stats.Outliers++
				return
			}
			// Too many consecutive rejections: the course truly
			// changed. Resynchronize on this fix.
			st.recent = st.recent[:0]
		}
	}
	st.outlierRun = 0

	moving := vNow.SpeedKnots > p.VMinKnots

	// Turns are only meaningful while under way on both fixes. A sharp
	// turn between the previous and the current velocity vector pivots
	// at the *previous* position, so the critical (turning) point is
	// emitted there — retaining the corner keeps reconstruction tight.
	if st.haveV && moving && st.vPrev.SpeedKnots > p.VMinKnots {
		delta := geo.SignedHeadingDelta(st.vPrev.HeadingDeg, vNow.HeadingDeg)
		if math.Abs(delta) > turnThr {
			tr.emit(st, CriticalPoint{
				MMSI: mmsi, Pos: st.lastPos, Time: nsTime(st.lastTNS), Type: EventTurn,
				SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
				Confidence: marginConfidence(math.Abs(delta), turnThr),
			})
			st.recentTurns = st.recentTurns[:0]
		} else {
			// Small individual changes may cumulatively signify a smooth
			// turn (paper Figure 3(b)): the cumulative change in heading
			// across the m most recent positions exceeding Δθ. Bounding
			// the accumulation window keeps the slow bearing drift of
			// long legs from masking genuine course changes.
			if len(st.recentTurns) == p.M {
				copy(st.recentTurns, st.recentTurns[1:])
				st.recentTurns = st.recentTurns[:p.M-1]
			}
			st.recentTurns = append(st.recentTurns, delta)
			var cum float64
			for _, d := range st.recentTurns {
				cum += d
			}
			if math.Abs(cum) > turnThr {
				tr.emit(st, CriticalPoint{
					MMSI: mmsi, Pos: pos, Time: nsTime(tns), Type: EventSmoothTurn,
					SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
					Confidence: marginConfidence(math.Abs(cum), turnThr),
				})
				st.recentTurns = st.recentTurns[:0]
			}
		}
	} else {
		st.recentTurns = st.recentTurns[:0]
	}

	// Instantaneous speed change (paper Figure 2(b)): emitted only when
	// the vessel is not inside a stop episode, where jitter speeds spam.
	if st.haveV && !st.stopped && (moving || st.vPrev.SpeedKnots > p.VMinKnots) {
		denom := max(vNow.SpeedKnots, 0.1)
		rel := math.Abs(vNow.SpeedKnots-st.vPrev.SpeedKnots) / denom
		if rel > speedFrac {
			tr.emit(st, CriticalPoint{
				MMSI: mmsi, Pos: pos, Time: nsTime(tns), Type: EventSpeedChange,
				SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
				Confidence: marginConfidence(rel, speedFrac),
			})
		}
	}

	tr.updateStopRun(st, pos, tns, vNow, moving, stopRadius)
	tr.updateSlowRun(st, pos, tns, vNow, moving)

	// The odometer hop is the same great-circle distance the velocity
	// was derived from: reuse it instead of recomputing.
	st.odometerM += dist
	st.departureM += dist

	if len(st.recent) == p.M {
		copy(st.recent, st.recent[1:])
		st.recent = st.recent[:p.M-1]
	}
	st.recent = append(st.recent, velEntry{v: vNow})
	st.vPrev = vNow
	st.haveV = true
	st.setLast(pos, tns, trig)
}

// recentMeanSpeed folds just the speed half of the recent-velocity window,
// accumulating in the same order geo.MeanVelocity would, so the result
// is bit-identical to its SpeedKnots.
func recentMeanSpeed(vs []velEntry) float64 {
	var speed float64
	for i := range vs {
		speed += vs[i].v.SpeedKnots
	}
	return speed / float64(len(vs))
}

// recentMeanHeading folds the heading half of the recent-velocity window,
// bit-identical to geo.MeanVelocity's HeadingDeg over the same samples:
// SinCosDeg returns exactly what the per-sample Sin/Cos calls would
// (pinned by the geo trig tests), and the zero-vector case yields the
// same zero heading.
func recentMeanHeading(vs []velEntry) float64 {
	var x, y float64
	for i := range vs {
		sin, cos := geo.SinCosDeg(vs[i].v.HeadingDeg)
		x += vs[i].v.SpeedKnots * sin
		y += vs[i].v.SpeedKnots * cos
	}
	if x != 0 || y != 0 {
		return geo.HeadingFromComponents(x, y)
	}
	return 0
}

// resetStopAgg clears the stop-run incremental aggregates.
func (st *vesselState) resetStopAgg() {
	st.stopSumLon, st.stopSumLat = 0, 0
	st.stopMinLon, st.stopMaxLon = 0, 0
	st.stopMinLat, st.stopMaxLat = 0, 0
}

// pushStopAgg folds one appended run member into the aggregates,
// preserving left-to-right summation order so the cached sums equal a
// fresh front-to-back recomputation bit for bit.
func (st *vesselState) pushStopAgg(pos geo.Point, first bool) {
	if first {
		st.stopSumLon, st.stopSumLat = pos.Lon, pos.Lat
		st.stopMinLon, st.stopMaxLon = pos.Lon, pos.Lon
		st.stopMinLat, st.stopMaxLat = pos.Lat, pos.Lat
		return
	}
	st.stopSumLon += pos.Lon
	st.stopSumLat += pos.Lat
	if pos.Lon < st.stopMinLon {
		st.stopMinLon = pos.Lon
	}
	if pos.Lon > st.stopMaxLon {
		st.stopMaxLon = pos.Lon
	}
	if pos.Lat < st.stopMinLat {
		st.stopMinLat = pos.Lat
	}
	if pos.Lat > st.stopMaxLat {
		st.stopMaxLat = pos.Lat
	}
}

// rebuildStopAgg recomputes the aggregates front to back after the run
// shrank from the front — the only mutation that breaks incremental
// maintenance without changing the summation order.
func (st *vesselState) rebuildStopAgg() {
	for i, f := range st.stopRun {
		st.pushStopAgg(f.pos, i == 0)
	}
}

// stopCentroid returns the centroid implied by the cached sums,
// bit-identical to runCentroid over the current run.
func (st *vesselState) stopCentroid() geo.Point {
	n := float64(len(st.stopRun))
	return geo.Point{Lon: st.stopSumLon / n, Lat: st.stopSumLat / n}
}

// stopWithin reports whether every run member lies within radius meters
// of the run centroid — the same answer withinRadius gave the row path.
// A conservative spherical L1 bound over the run's bounding box settles
// the common case (a tight anchorage drift) without touching the run;
// only runs brushing the radius fall back to the exact per-point scan.
func (st *vesselState) stopWithin(radius float64) bool {
	c := st.stopCentroid()
	dLat := max(st.stopMaxLat-c.Lat, c.Lat-st.stopMinLat)
	dLon := max(st.stopMaxLon-c.Lon, c.Lon-st.stopMinLon)
	// The 0.999 slack absorbs the bound's own floating-point rounding:
	// the fast path may only fire when containment is guaranteed.
	if geo.L1DistanceBoundMeters(dLat, dLon) <= 0.999*radius {
		return true
	}
	for _, f := range st.stopRun {
		if geo.Haversine(c, f.pos) > radius {
			return false
		}
	}
	return true
}

// updateStopRun maintains the long-term stop state machine: at least m
// consecutive low-speed positions within radius r of their centroid
// (paper Figure 3(c)).
func (tr *Tracker) updateStopRun(st *vesselState, pos geo.Point, tns int64, vNow geo.Velocity, moving bool, radius float64) {
	p := &tr.params
	if !moving {
		st.pushStopAgg(pos, len(st.stopRun) == 0)
		st.stopRun = append(st.stopRun, runFix{pos: pos, tns: tns})
		// Shrink from the front until the run fits in radius r.
		for len(st.stopRun) > 1 && !st.stopWithin(radius) {
			if st.stopped {
				// The vessel drifted out of the stop circle: close the
				// episode and start a fresh run at the current position.
				tr.endStop(st, tns, radius)
				st.stopRun = append(st.stopRun[:0], runFix{pos: pos, tns: tns})
				st.pushStopAgg(pos, true)
				return
			}
			// Copy-shift instead of reslicing so the run keeps its backing
			// capacity: the allocation-free steady state depends on it.
			copy(st.stopRun, st.stopRun[1:])
			st.stopRun = st.stopRun[:len(st.stopRun)-1]
			st.rebuildStopAgg()
		}
		if !st.stopped && len(st.stopRun) >= p.M {
			st.stopped = true
			c := st.stopCentroid()
			tr.emit(st, CriticalPoint{
				MMSI: st.mmsi, Pos: c, Time: nsTime(st.stopRun[0].tns), Type: EventStopStart,
				Confidence: stopConfidenceAt(st.stopRun, c, radius),
			})
		}
		return
	}
	if st.stopped {
		tr.endStop(st, tns, radius)
	} else if len(st.stopRun) != 0 {
		// Skip the aggregate reset for cruising vessels whose run is
		// already empty — the common case on every moving fix.
		st.stopRun = st.stopRun[:0]
		st.resetStopAgg()
	}
}

// endStop emits the StopEnd point: the collapsed representation is the
// centroid of the episode with its total duration.
func (tr *Tracker) endStop(st *vesselState, endNS int64, radius float64) {
	run := st.stopRun
	c := st.stopCentroid()
	cp := CriticalPoint{
		MMSI: st.mmsi, Pos: c, Time: nsTime(endNS), Type: EventStopEnd,
		Duration:   time.Duration(endNS - run[0].tns),
		Confidence: stopConfidenceAt(run, c, radius),
	}
	tr.emit(st, cp)
	st.stopped = false
	st.stopRun = st.stopRun[:0]
	st.resetStopAgg()
	// The stop is a departure point: distance-from-origin restarts here.
	st.departureM = 0
}

// updateSlowRun maintains the slow-motion state machine: at least m
// consecutive positions at low but nonzero speed, usually spread along a
// path (paper Figure 3(d)).
func (tr *Tracker) updateSlowRun(st *vesselState, pos geo.Point, tns int64, vNow geo.Velocity, moving bool) {
	p := &tr.params
	slowNow := moving && vNow.SpeedKnots <= p.VSlowKnots
	if slowNow {
		st.slowRun = append(st.slowRun, runFix{pos: pos, tns: tns})
		if !st.slow && len(st.slowRun) >= p.M {
			st.slow = true
			tr.emit(st, CriticalPoint{
				MMSI: st.mmsi, Pos: runMedian(st.slowRun), Time: nsTime(st.slowRun[0].tns),
				Type: EventSlowStart, SpeedKn: vNow.SpeedKnots,
				Confidence: marginConfidence(p.VSlowKnots-vNow.SpeedKnots+p.VSlowKnots, p.VSlowKnots),
			})
		}
		if len(st.slowRun) > 4*p.M { // bound memory on long episodes
			st.slowRun = append(st.slowRun[:0], st.slowRun[len(st.slowRun)-p.M:]...)
		}
		return
	}
	if st.slow {
		tr.emit(st, CriticalPoint{
			MMSI: st.mmsi, Pos: runMedian(st.slowRun), Time: nsTime(tns), Type: EventSlowEnd,
			Duration: time.Duration(tns - st.slowRun[0].tns),
		})
		st.slow = false
	}
	st.slowRun = st.slowRun[:0]
}

// closeRuns ends any open durative episodes at the vessel's last fix
// (endNS), used when a communication gap interrupts them.
func (tr *Tracker) closeRuns(st *vesselState, endNS int64, radius float64) {
	if st.stopped {
		tr.endStop(st, endNS, radius)
	}
	if st.slow {
		tr.emit(st, CriticalPoint{
			MMSI: st.mmsi, Pos: runMedian(st.slowRun), Time: nsTime(endNS), Type: EventSlowEnd,
			Duration: time.Duration(endNS - st.slowRun[0].tns),
		})
		st.slow = false
	}
	st.stopRun = st.stopRun[:0]
	st.resetStopAgg()
	st.slowRun = st.slowRun[:0]
}

// detectGaps performs slide-time gap detection: a vessel silent for at
// least ΔT as of query time Q gets a gap-start critical point stamped at
// its last report (paper Figure 3(a)). Candidates were gathered by
// collectSweeps; they are swept in ascending MMSI order so the emission
// order is deterministic — the sharded tier merges per-shard gap
// emissions back into exactly this order.
func (tr *Tracker) detectGaps(q time.Time) {
	slices.Sort(tr.gapScan)
	for _, mmsi := range tr.gapScan {
		st := tr.vessels[mmsi]
		tr.closeRuns(st, st.lastTNS, tr.stopRadiusFor(st))
		tr.emit(st, CriticalPoint{
			MMSI: mmsi, Pos: st.lastPos, Time: nsTime(st.lastTNS), Type: EventGapStart,
		})
		st.gapOpen = true
	}
}

// compareDelta orders the delta stream by time, then MMSI; equal keys
// can only come from one vessel's synopsis, whose order a stable sort
// preserves, so the sorted stream is fully deterministic.
func compareDelta(a, b CriticalPoint) int {
	if c := a.Time.Compare(b.Time); c != 0 {
		return c
	}
	switch {
	case a.MMSI < b.MMSI:
		return -1
	case a.MMSI > b.MMSI:
		return 1
	}
	return 0
}

// deltaSortKey is the integer projection evict sorts instead of moving
// 80-byte CriticalPoints through a comparison sort. idx (the point's
// position in the unsorted delta) breaks ties, which makes a plain sort
// on keys equivalent to a stable sort on the points themselves.
type deltaSortKey struct {
	tns  int64
	mmsi uint32
	idx  int32
}

func compareDeltaKey(a, b deltaSortKey) int {
	switch {
	case a.tns < b.tns:
		return -1
	case a.tns > b.tns:
		return 1
	case a.mmsi < b.mmsi:
		return -1
	case a.mmsi > b.mmsi:
		return 1
	case a.idx < b.idx:
		return -1
	case a.idx > b.idx:
		return 1
	}
	return 0
}

// evict expires critical points older than the window range and removes
// vessels silent beyond it, returning the expired "delta" points in
// per-vessel time order. The returned slice is tracker-owned scratch,
// valid until the next slide. Only the candidates collectSweeps gathered
// are visited; vessels whose oldest retained point is still inside the
// window were already settled by its head peek.
func (tr *Tracker) evict(q time.Time) []CriticalPoint {
	cutoff := q.Add(-tr.window.Range)
	cutoffNS := cutoff.UnixNano()
	tr.delta = tr.delta[:0]
	for _, mmsi := range tr.evictScan {
		st := tr.vessels[mmsi]
		if ts, ok := st.synopsis.Oldest(); ok && !ts.After(cutoff) {
			st.synopsis.Each(func(ts time.Time, cp CriticalPoint) bool {
				if ts.After(cutoff) {
					return false
				}
				tr.delta = append(tr.delta, cp)
				return true
			})
			st.synopsis.EvictBefore(cutoff)
		}
		if st.lastSeenNS <= cutoffNS {
			st.synopsis.Each(func(_ time.Time, cp CriticalPoint) bool {
				tr.delta = append(tr.delta, cp)
				return true
			})
			delete(tr.vessels, mmsi)
		}
	}
	// Candidate order follows map iteration, which is random; keep the
	// delta stream deterministic for reproducible staging and archival
	// (idx settles equal (time, MMSI) keys, which can only come from one
	// vessel's synopsis walk). Sorting 16-byte integer keys
	// and gathering once is cheaper than a stable sort that swaps 80-byte
	// points; the idx tiebreak reproduces stable order exactly (UnixNano
	// ordering coincides with Time ordering for any representable fix
	// timestamp).
	tr.deltaKey = tr.deltaKey[:0]
	for i := range tr.delta {
		tr.deltaKey = append(tr.deltaKey, deltaSortKey{
			tns: tr.delta[i].Time.UnixNano(), mmsi: tr.delta[i].MMSI, idx: int32(i),
		})
	}
	slices.SortFunc(tr.deltaKey, compareDeltaKey)
	tr.deltaOut = tr.deltaOut[:0]
	for _, k := range tr.deltaKey {
		tr.deltaOut = append(tr.deltaOut, tr.delta[k.idx])
	}
	return tr.deltaOut
}

// Odometer returns a vessel's traveled distance in meters: the total
// over its tracked history and the distance since it last departed
// (since its last long-term stop ended). Across communication gaps the
// straight-line chord is counted, as the course in between is unknown.
// ok is false for vessels without live state.
func (tr *Tracker) Odometer(mmsi uint32) (totalM, sinceDepartureM float64, ok bool) {
	st := tr.vessels[mmsi]
	if st == nil {
		return 0, 0, false
	}
	return st.odometerM, st.departureM, true
}

// VesselCount returns the number of vessels with live state.
func (tr *Tracker) VesselCount() int { return len(tr.vessels) }

// Synopsis returns the critical points currently retained in the window
// for the given vessel, oldest first.
func (tr *Tracker) Synopsis(mmsi uint32) []CriticalPoint {
	st := tr.vessels[mmsi]
	if st == nil {
		return nil
	}
	out := make([]CriticalPoint, 0, st.synopsis.Len())
	st.synopsis.Each(func(_ time.Time, cp CriticalPoint) bool {
		out = append(out, cp)
		return true
	})
	return out
}

// stopConfidenceAt grades a long-term stop by how tightly the run packs
// inside the radius: a run hugging the centroid is a confident stop, a
// run brushing the radius boundary less so. c is the run centroid the
// caller already derived from the cached sums.
func stopConfidenceAt(run []runFix, c geo.Point, radius float64) float64 {
	var worst float64
	for _, f := range run {
		if d := geo.Haversine(c, f.pos); d > worst {
			worst = d
		}
	}
	conf := 1 - worst/(2*radius)
	if conf < 0.5 {
		conf = 0.5
	}
	return conf
}

// runMedian returns the positionally central fix of the run: the
// representative critical point of a slow-motion episode (paper §3.1).
// It picks the fix minimizing the sum of distances to the others — the
// geometric median restricted to run members.
func runMedian(run []runFix) geo.Point {
	if len(run) == 1 {
		return run[0].pos
	}
	best, bestSum := 0, math.Inf(1)
	for i := range run {
		sum := 0.0
		for j := range run {
			if i != j {
				sum += geo.Haversine(run[i].pos, run[j].pos)
			}
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return run[best].pos
}
