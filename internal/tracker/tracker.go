package tracker

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// Tracker is the online mobility tracker: it consumes the positional
// stream slide by slide, maintains per-vessel motion state entirely in
// main memory without index support (paper §2), and emits annotated
// critical points. Detection of instantaneous events and gaps is O(1)
// per incoming tuple; long-lasting events cost O(m) over the m most
// recent positions (paper §3.1).
type Tracker struct {
	params  Params
	window  stream.WindowSpec
	vessels map[uint32]*vesselState
	stats   Stats

	// Slide-scoped scratch, reused across slides so the hot path does
	// not re-allocate per slide. fresh holds the emissions of the
	// current slide; delta and gapScan back eviction and the slide-time
	// gap sweep.
	fresh   []CriticalPoint
	delta   []CriticalPoint
	gapScan []uint32

	// Emission indexing, enabled only when the tracker runs as one
	// shard of a Sharded tier: freshIdx records, parallel to fresh, the
	// batch index of the fix that triggered each emission, so the
	// sharded merge can restore global batch order exactly. curIdx is
	// the index of the fix being ingested (gapSentinel outside ingest).
	indexing bool
	curIdx   int32
	freshIdx []int32

	// lastQuery is the query time that closed the previous slide: the
	// boundary against which accepted fixes are classified as late.
	lastQuery time.Time

	// Tier-shared accounting, wired by NewSharded (nil on a standalone
	// tracker, and nil while a journal replay rebuilds a shard so the
	// replay does not double-count). Atomics because core.Health and
	// metric scrapes read them from other goroutines mid-slide.
	lateAcc  *atomic.Int64
	lateDrop *atomic.Int64
	shedCnt  *atomic.Int64
	shed     *atomic.Bool
}

// gapSentinel tags emissions not attributable to a fix: the slide-time
// gap sweep runs after every fix of the batch, so its emissions sort
// after all ingest-time ones.
const gapSentinel = int32(1<<31 - 1)

// vesselState is the per-vessel in-memory motion state.
type vesselState struct {
	last     ais.Fix
	haveLast bool

	vPrev geo.Velocity
	haveV bool

	recent []geo.Velocity // up to M latest velocity vectors (mean course)

	outlierRun int
	gapOpen    bool

	// Long-term stop run: consecutive low-speed fixes.
	stopRun []ais.Fix
	stopped bool

	// Slow-motion run: consecutive slow (but moving) fixes.
	slowRun []ais.Fix
	slow    bool

	recentTurns []float64 // signed heading deltas of the last m steps

	// Odometers (the §3.1 extension the paper plans: "capture additional
	// features, such as traveled distance from a given origin"): total
	// accepted-hop distance, and distance since the vessel last departed
	// — i.e. since its last long-term stop ended.
	odometerM  float64
	departureM float64

	synopsis stream.TimeBuffer[CriticalPoint]
	lastSeen time.Time
}

// New returns a tracker with the given parameters and window. It panics
// on invalid configuration, which is a programming error.
func New(params Params, window stream.WindowSpec) *Tracker {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("tracker: %v", err))
	}
	if err := window.Validate(); err != nil {
		panic(fmt.Sprintf("tracker: %v", err))
	}
	return &Tracker{
		params:  params,
		window:  window,
		vessels: make(map[uint32]*vesselState),
		stats:   Stats{ByType: make(map[EventType]int)},
	}
}

// Params returns the tracker's parameters.
func (tr *Tracker) Params() Params { return tr.params }

// Stats returns a snapshot of the counters.
func (tr *Tracker) Stats() Stats {
	s := tr.stats
	s.ByType = make(map[EventType]int, len(tr.stats.ByType))
	for k, v := range tr.stats.ByType {
		s.ByType[k] = v
	}
	return s
}

// SlideResult is the output of one window slide.
type SlideResult struct {
	// Query is the query time Q_i closing this slide.
	Query time.Time
	// Fresh contains the critical points detected during this slide, in
	// emission order — the input of complex event recognition.
	Fresh []CriticalPoint
	// Delta contains critical points that expired from the sliding
	// window at this query time and move to the staging area for offline
	// trajectory reconstruction (paper §3.2).
	Delta []CriticalPoint
}

// Slide processes one batch: it updates the window with fresh
// positions, detects trajectory events, performs slide-time gap
// detection, and evicts expired critical points and stale vessels.
// The returned slices are copies the caller may retain freely; the
// sharded tier uses the scratch-backed internal phases instead.
func (tr *Tracker) Slide(b stream.Batch) SlideResult {
	tr.beginSlide()
	for i, f := range b.Fixes {
		tr.curIdx = int32(i)
		tr.ingest(f)
	}
	_, delta := tr.finishSlide(b.Query)

	out := SlideResult{Query: b.Query}
	if len(tr.fresh) > 0 {
		out.Fresh = append([]CriticalPoint(nil), tr.fresh...)
	}
	if len(delta) > 0 {
		out.Delta = append([]CriticalPoint(nil), delta...)
	}
	return out
}

// beginSlide resets the slide-scoped scratch.
func (tr *Tracker) beginSlide() {
	tr.fresh = tr.fresh[:0]
	tr.freshIdx = tr.freshIdx[:0]
	tr.curIdx = gapSentinel
}

// ingestIndexed processes one fix tagged with its global batch index,
// the sharded tier's ingest entry point.
func (tr *Tracker) ingestIndexed(f ais.Fix, idx int32) {
	tr.curIdx = idx
	tr.ingest(f)
}

// finishSlide runs the per-slide phases that follow ingestion: the
// slide-time gap sweep and window eviction. It returns the offset into
// fresh where the gap-sweep emissions start (they are ordered by MMSI,
// while fresh[:gapStart] is ordered by triggering fix) and the expired
// delta points. Both fresh and delta are tracker-owned scratch, valid
// until the next slide.
func (tr *Tracker) finishSlide(q time.Time) (gapStart int, delta []CriticalPoint) {
	tr.curIdx = gapSentinel
	gapStart = len(tr.fresh)
	tr.detectGaps(q)
	delta = tr.evict(q)
	tr.lastQuery = q
	return gapStart, delta
}

// emit records a critical point.
func (tr *Tracker) emit(st *vesselState, cp CriticalPoint) {
	tr.stats.Critical++
	tr.stats.ByType[cp.Type]++
	tr.fresh = append(tr.fresh, cp)
	if tr.indexing {
		tr.freshIdx = append(tr.freshIdx, tr.curIdx)
	}
	st.synopsis.Append(cp.Time, cp)
}

// noteLateAccepted counts an admitted fix whose timestamp precedes the
// last query time: it belongs to an already-closed slide but still
// advances its vessel's clock, so it is processed rather than dropped.
func (tr *Tracker) noteLateAccepted(t time.Time) {
	if !tr.lastQuery.IsZero() && t.Before(tr.lastQuery) {
		tr.stats.LateAccepted++
		if tr.lateAcc != nil {
			tr.lateAcc.Add(1)
		}
	}
}

// ingest processes one fix.
func (tr *Tracker) ingest(f ais.Fix) {
	tr.stats.FixesIn++
	st := tr.vessels[f.MMSI]
	if st == nil {
		st = &vesselState{}
		tr.vessels[f.MMSI] = st
	}
	if !st.haveLast {
		st.last = f
		st.haveLast = true
		st.lastSeen = f.Time
		tr.noteLateAccepted(f.Time)
		tr.emit(st, CriticalPoint{MMSI: f.MMSI, Pos: f.Pos, Time: f.Time, Type: EventFirst})
		return
	}
	if !f.Time.After(st.last.Time) {
		tr.stats.Duplicates++
		if f.Time.Before(st.last.Time) {
			// Behind the vessel's own clock: a reordered fix that cannot
			// be sequenced any more.
			tr.stats.LateDropped++
			if tr.lateDrop != nil {
				tr.lateDrop.Add(1)
			}
		}
		return
	}
	tr.noteLateAccepted(f.Time)

	p := tr.params
	dt := f.Time.Sub(st.last.Time)

	// Overload shedding (degradation ladder L3): while the pipeline is
	// shedding, positions of long-stopped vessels only advance the
	// vessel clock — no event detection, no synopsis growth. A fix that
	// leaves the stop circle (or a communication gap) re-enters the full
	// path so departures are still caught.
	if st.stopped && tr.shed != nil && tr.shed.Load() &&
		dt < p.GapPeriod && geo.Haversine(st.last.Pos, f.Pos) <= p.StopRadiusMeters {
		tr.stats.Shed++
		if tr.shedCnt != nil {
			tr.shedCnt.Add(1)
		}
		st.last = f
		st.lastSeen = f.Time
		return
	}

	// Communication gap closed by this fix (it may also have been opened
	// at a slide boundary while the vessel was silent).
	if dt >= p.GapPeriod || st.gapOpen {
		if !st.gapOpen {
			tr.closeRuns(st, st.last)
			tr.emit(st, CriticalPoint{
				MMSI: f.MMSI, Pos: st.last.Pos, Time: st.last.Time, Type: EventGapStart,
			})
		}
		st.gapOpen = false
		tr.emit(st, CriticalPoint{MMSI: f.MMSI, Pos: f.Pos, Time: f.Time, Type: EventGapEnd})
		// Count the chord across the silence: the true path is unknown
		// but at least this far was covered.
		hop := geo.Haversine(st.last.Pos, f.Pos)
		st.odometerM += hop
		st.departureM += hop
		// The course across the silence is unknown: restart motion state.
		st.haveV = false
		st.recent = st.recent[:0]
		st.recentTurns = st.recentTurns[:0]
		st.outlierRun = 0
		st.last = f
		st.lastSeen = f.Time
		return
	}

	vNow, ok := geo.VelocityBetween(st.last.Pos, st.last.Time, f.Pos, f.Time)
	if !ok {
		tr.stats.Duplicates++
		return
	}

	// Off-course outlier rejection (paper Figure 2(d)): an abrupt change
	// in both speed and heading relative to the mean velocity over the
	// previous m positions marks a temporary deviation to discard.
	if !p.DisableOutlierFilter && len(st.recent) >= p.M/2 {
		if vm, ok := geo.MeanVelocity(st.recent); ok {
			ref := math.Max(vm.SpeedKnots, 1)
			if vNow.SpeedKnots > p.OutlierMinKnots &&
				vNow.SpeedKnots > p.OutlierSpeedFactor*ref &&
				geo.HeadingDelta(vNow.HeadingDeg, vm.HeadingDeg) > p.OutlierHeadingDeg {
				st.outlierRun++
				if st.outlierRun < p.OutlierRunLimit {
					tr.stats.Outliers++
					return
				}
				// Too many consecutive rejections: the course truly
				// changed. Resynchronize on this fix.
				st.recent = st.recent[:0]
			}
		}
	}
	st.outlierRun = 0

	moving := vNow.SpeedKnots > p.VMinKnots

	// Turns are only meaningful while under way on both fixes. A sharp
	// turn between the previous and the current velocity vector pivots
	// at the *previous* position, so the critical (turning) point is
	// emitted there — retaining the corner keeps reconstruction tight.
	if st.haveV && moving && st.vPrev.SpeedKnots > p.VMinKnots {
		delta := geo.SignedHeadingDelta(st.vPrev.HeadingDeg, vNow.HeadingDeg)
		if math.Abs(delta) > p.TurnThresholdDeg {
			tr.emit(st, CriticalPoint{
				MMSI: f.MMSI, Pos: st.last.Pos, Time: st.last.Time, Type: EventTurn,
				SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
				Confidence: marginConfidence(math.Abs(delta), p.TurnThresholdDeg),
			})
			st.recentTurns = st.recentTurns[:0]
		} else {
			// Small individual changes may cumulatively signify a smooth
			// turn (paper Figure 3(b)): the cumulative change in heading
			// across the m most recent positions exceeding Δθ. Bounding
			// the accumulation window keeps the slow bearing drift of
			// long legs from masking genuine course changes.
			if len(st.recentTurns) == p.M {
				copy(st.recentTurns, st.recentTurns[1:])
				st.recentTurns = st.recentTurns[:p.M-1]
			}
			st.recentTurns = append(st.recentTurns, delta)
			var cum float64
			for _, d := range st.recentTurns {
				cum += d
			}
			if math.Abs(cum) > p.TurnThresholdDeg {
				tr.emit(st, CriticalPoint{
					MMSI: f.MMSI, Pos: f.Pos, Time: f.Time, Type: EventSmoothTurn,
					SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
					Confidence: marginConfidence(math.Abs(cum), p.TurnThresholdDeg),
				})
				st.recentTurns = st.recentTurns[:0]
			}
		}
	} else {
		st.recentTurns = st.recentTurns[:0]
	}

	// Instantaneous speed change (paper Figure 2(b)): emitted only when
	// the vessel is not inside a stop episode, where jitter speeds spam.
	if st.haveV && !st.stopped && (moving || st.vPrev.SpeedKnots > p.VMinKnots) {
		denom := math.Max(vNow.SpeedKnots, 0.1)
		rel := math.Abs(vNow.SpeedKnots-st.vPrev.SpeedKnots) / denom
		if rel > p.SpeedChangeFrac {
			tr.emit(st, CriticalPoint{
				MMSI: f.MMSI, Pos: f.Pos, Time: f.Time, Type: EventSpeedChange,
				SpeedKn: vNow.SpeedKnots, HeadingDeg: vNow.HeadingDeg,
				Confidence: marginConfidence(rel, p.SpeedChangeFrac),
			})
		}
	}

	tr.updateStopRun(st, f, vNow, moving)
	tr.updateSlowRun(st, f, vNow, moving)

	hop := geo.Haversine(st.last.Pos, f.Pos)
	st.odometerM += hop
	st.departureM += hop

	if len(st.recent) == p.M {
		copy(st.recent, st.recent[1:])
		st.recent = st.recent[:p.M-1]
	}
	st.recent = append(st.recent, vNow)
	st.vPrev = vNow
	st.haveV = true
	st.last = f
	st.lastSeen = f.Time
}

// updateStopRun maintains the long-term stop state machine: at least m
// consecutive low-speed positions within radius r of their centroid
// (paper Figure 3(c)).
func (tr *Tracker) updateStopRun(st *vesselState, f ais.Fix, vNow geo.Velocity, moving bool) {
	p := tr.params
	if !moving {
		st.stopRun = append(st.stopRun, f)
		// Shrink from the front until the run fits in radius r.
		for len(st.stopRun) > 1 && !withinRadius(st.stopRun, p.StopRadiusMeters) {
			if st.stopped {
				// The vessel drifted out of the stop circle: close the
				// episode and start a fresh run at the current position.
				tr.endStop(st, f.Time)
				st.stopRun = append(st.stopRun[:0], f)
				return
			}
			st.stopRun = st.stopRun[1:]
		}
		if !st.stopped && len(st.stopRun) >= p.M {
			st.stopped = true
			start := st.stopRun[0].Time
			tr.emit(st, CriticalPoint{
				MMSI: f.MMSI, Pos: runCentroid(st.stopRun), Time: start, Type: EventStopStart,
				Confidence: stopConfidence(st.stopRun, p.StopRadiusMeters),
			})
		}
		return
	}
	if st.stopped {
		tr.endStop(st, f.Time)
	}
	st.stopRun = st.stopRun[:0]
}

// endStop emits the StopEnd point: the collapsed representation is the
// centroid of the episode with its total duration.
func (tr *Tracker) endStop(st *vesselState, end time.Time) {
	run := st.stopRun
	cp := CriticalPoint{
		MMSI: st.last.MMSI, Pos: runCentroid(run), Time: end, Type: EventStopEnd,
		Duration:   end.Sub(run[0].Time),
		Confidence: stopConfidence(run, tr.params.StopRadiusMeters),
	}
	tr.emit(st, cp)
	st.stopped = false
	st.stopRun = st.stopRun[:0]
	// The stop is a departure point: distance-from-origin restarts here.
	st.departureM = 0
}

// updateSlowRun maintains the slow-motion state machine: at least m
// consecutive positions at low but nonzero speed, usually spread along a
// path (paper Figure 3(d)).
func (tr *Tracker) updateSlowRun(st *vesselState, f ais.Fix, vNow geo.Velocity, moving bool) {
	p := tr.params
	slowNow := moving && vNow.SpeedKnots <= p.VSlowKnots
	if slowNow {
		st.slowRun = append(st.slowRun, f)
		if !st.slow && len(st.slowRun) >= p.M {
			st.slow = true
			tr.emit(st, CriticalPoint{
				MMSI: f.MMSI, Pos: runMedian(st.slowRun), Time: st.slowRun[0].Time,
				Type: EventSlowStart, SpeedKn: vNow.SpeedKnots,
				Confidence: marginConfidence(p.VSlowKnots-vNow.SpeedKnots+p.VSlowKnots, p.VSlowKnots),
			})
		}
		if len(st.slowRun) > 4*p.M { // bound memory on long episodes
			st.slowRun = append(st.slowRun[:0], st.slowRun[len(st.slowRun)-p.M:]...)
		}
		return
	}
	if st.slow {
		tr.emit(st, CriticalPoint{
			MMSI: f.MMSI, Pos: runMedian(st.slowRun), Time: f.Time, Type: EventSlowEnd,
			Duration: f.Time.Sub(st.slowRun[0].Time),
		})
		st.slow = false
	}
	st.slowRun = st.slowRun[:0]
}

// closeRuns ends any open durative episodes at the given last fix,
// used when a communication gap interrupts them.
func (tr *Tracker) closeRuns(st *vesselState, last ais.Fix) {
	if st.stopped {
		tr.endStop(st, last.Time)
	}
	if st.slow {
		tr.emit(st, CriticalPoint{
			MMSI: last.MMSI, Pos: runMedian(st.slowRun), Time: last.Time, Type: EventSlowEnd,
			Duration: last.Time.Sub(st.slowRun[0].Time),
		})
		st.slow = false
	}
	st.stopRun = st.stopRun[:0]
	st.slowRun = st.slowRun[:0]
}

// detectGaps performs slide-time gap detection: a vessel silent for at
// least ΔT as of query time Q gets a gap-start critical point stamped at
// its last report (paper Figure 3(a)). Vessels are swept in ascending
// MMSI order so the emission order is deterministic — the sharded tier
// merges per-shard gap emissions back into exactly this order.
func (tr *Tracker) detectGaps(q time.Time) {
	tr.gapScan = tr.gapScan[:0]
	for mmsi, st := range tr.vessels {
		if !st.haveLast || st.gapOpen {
			continue
		}
		if q.Sub(st.last.Time) >= tr.params.GapPeriod {
			tr.gapScan = append(tr.gapScan, mmsi)
		}
	}
	slices.Sort(tr.gapScan)
	for _, mmsi := range tr.gapScan {
		st := tr.vessels[mmsi]
		tr.closeRuns(st, st.last)
		tr.emit(st, CriticalPoint{
			MMSI: mmsi, Pos: st.last.Pos, Time: st.last.Time, Type: EventGapStart,
		})
		st.gapOpen = true
	}
}

// compareDelta orders the delta stream by time, then MMSI; equal keys
// can only come from one vessel's synopsis, whose order a stable sort
// preserves, so the sorted stream is fully deterministic.
func compareDelta(a, b CriticalPoint) int {
	if c := a.Time.Compare(b.Time); c != 0 {
		return c
	}
	switch {
	case a.MMSI < b.MMSI:
		return -1
	case a.MMSI > b.MMSI:
		return 1
	}
	return 0
}

// evict expires critical points older than the window range and removes
// vessels silent beyond it, returning the expired "delta" points in
// per-vessel time order. The returned slice is tracker-owned scratch,
// valid until the next slide.
func (tr *Tracker) evict(q time.Time) []CriticalPoint {
	cutoff := q.Add(-tr.window.Range)
	tr.delta = tr.delta[:0]
	for mmsi, st := range tr.vessels {
		st.synopsis.Each(func(ts time.Time, cp CriticalPoint) bool {
			if ts.After(cutoff) {
				return false
			}
			tr.delta = append(tr.delta, cp)
			return true
		})
		st.synopsis.EvictBefore(cutoff)
		if !st.lastSeen.After(cutoff) {
			st.synopsis.Each(func(_ time.Time, cp CriticalPoint) bool {
				tr.delta = append(tr.delta, cp)
				return true
			})
			delete(tr.vessels, mmsi)
		}
	}
	// Map iteration order is random; keep the delta stream deterministic
	// for reproducible staging and archival.
	slices.SortStableFunc(tr.delta, compareDelta)
	return tr.delta
}

// Odometer returns a vessel's traveled distance in meters: the total
// over its tracked history and the distance since it last departed
// (since its last long-term stop ended). Across communication gaps the
// straight-line chord is counted, as the course in between is unknown.
// ok is false for vessels without live state.
func (tr *Tracker) Odometer(mmsi uint32) (totalM, sinceDepartureM float64, ok bool) {
	st := tr.vessels[mmsi]
	if st == nil {
		return 0, 0, false
	}
	return st.odometerM, st.departureM, true
}

// VesselCount returns the number of vessels with live state.
func (tr *Tracker) VesselCount() int { return len(tr.vessels) }

// Synopsis returns the critical points currently retained in the window
// for the given vessel, oldest first.
func (tr *Tracker) Synopsis(mmsi uint32) []CriticalPoint {
	st := tr.vessels[mmsi]
	if st == nil {
		return nil
	}
	out := make([]CriticalPoint, 0, st.synopsis.Len())
	st.synopsis.Each(func(_ time.Time, cp CriticalPoint) bool {
		out = append(out, cp)
		return true
	})
	return out
}

// withinRadius reports whether every fix of the run lies within radius
// meters of the run centroid.
func withinRadius(run []ais.Fix, radius float64) bool {
	c := runCentroid(run)
	for _, f := range run {
		if geo.Haversine(c, f.Pos) > radius {
			return false
		}
	}
	return true
}

// stopConfidence grades a long-term stop by how tightly the run packs
// inside the radius: a run hugging the centroid is a confident stop, a
// run brushing the radius boundary less so.
func stopConfidence(run []ais.Fix, radius float64) float64 {
	c := runCentroid(run)
	var worst float64
	for _, f := range run {
		if d := geo.Haversine(c, f.Pos); d > worst {
			worst = d
		}
	}
	conf := 1 - worst/(2*radius)
	if conf < 0.5 {
		conf = 0.5
	}
	return conf
}

// runCentroid returns the centroid of the run's positions. It is
// computed inline (same arithmetic as geo.Centroid) because it runs for
// every low-speed fix on the hot path and must not allocate.
func runCentroid(run []ais.Fix) geo.Point {
	var sLon, sLat float64
	for _, f := range run {
		sLon += f.Pos.Lon
		sLat += f.Pos.Lat
	}
	n := float64(len(run))
	return geo.Point{Lon: sLon / n, Lat: sLat / n}
}

// runMedian returns the positionally central fix of the run: the
// representative critical point of a slow-motion episode (paper §3.1).
// It picks the fix minimizing the sum of distances to the others — the
// geometric median restricted to run members.
func runMedian(run []ais.Fix) geo.Point {
	if len(run) == 1 {
		return run[0].Pos
	}
	best, bestSum := 0, math.Inf(1)
	for i := range run {
		sum := 0.0
		for j := range run {
			if i != j {
				sum += geo.Haversine(run[i].Pos, run[j].Pos)
			}
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return run[best].Pos
}
