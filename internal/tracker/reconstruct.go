package tracker

import (
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Synopsis is a time-ordered sequence of critical points for one vessel,
// from which the original trajectory is approximately reconstructed by
// linear interpolation between consecutive critical points (constant
// velocity assumption, paper §5.1).
type Synopsis []CriticalPoint

// SortByTime orders the synopsis chronologically in place.
func (s Synopsis) SortByTime() {
	slices.SortStableFunc(s, func(a, b CriticalPoint) int { return a.Time.Compare(b.Time) })
}

// At returns the approximate (time-aligned) position at time t: the
// linear interpolation between the critical points bracketing t.
// Outside the synopsis extent, the nearest critical point is returned.
// ok is false for an empty synopsis.
func (s Synopsis) At(t time.Time) (geo.Point, bool) {
	if len(s) == 0 {
		return geo.Point{}, false
	}
	if !t.After(s[0].Time) {
		return s[0].Pos, true
	}
	last := s[len(s)-1]
	if !t.Before(last.Time) {
		return last.Pos, true
	}
	i := sort.Search(len(s), func(i int) bool { return !s[i].Time.Before(t) })
	a, b := s[i-1], s[i]
	span := b.Time.Sub(a.Time).Seconds()
	if span <= 0 {
		return a.Pos, true
	}
	f := t.Sub(a.Time).Seconds() / span
	return geo.Interpolate(a.Pos, b.Pos, f), true
}

// RMSE estimates the deviation between a vessel's original trajectory
// and its compressed representation, following the paper's method
// (§5.1): every original position p_i that was discarded is compared to
// the synchronized point p'_i obtained by interpolating between the
// adjacent retained critical points at timestamp τ_i, and the root mean
// square of the Haversine distances is returned, in meters. It returns
// 0 for empty inputs.
func RMSE(original []ais.Fix, synopsis Synopsis) float64 {
	if len(original) == 0 || len(synopsis) == 0 {
		return 0
	}
	var sumSq float64
	for _, f := range original {
		approx, ok := synopsis.At(f.Time)
		if !ok {
			continue
		}
		d := geo.Haversine(f.Pos, approx)
		sumSq += d * d
	}
	return math.Sqrt(sumSq / float64(len(original)))
}

// DistanceBetween returns the distance in meters traveled along the
// reconstructed path between times t1 and t2 — the paper's §2 example
// of a continuous aggregate query ("an aggregate query could report at
// every minute the distance traveled by a ship over the past hour"),
// answered from the synopsis instead of the raw stream.
func (s Synopsis) DistanceBetween(t1, t2 time.Time) float64 {
	if len(s) == 0 || !t2.After(t1) {
		return 0
	}
	start, ok1 := s.At(t1)
	end, ok2 := s.At(t2)
	if !ok1 || !ok2 {
		return 0
	}
	var d float64
	prev := start
	for _, cp := range s {
		if !cp.Time.After(t1) {
			continue
		}
		if !cp.Time.Before(t2) {
			break
		}
		d += geo.Haversine(prev, cp.Pos)
		prev = cp.Pos
	}
	return d + geo.Haversine(prev, end)
}

// SplitByVessel groups a mixed critical-point stream into per-vessel
// chronological synopses.
func SplitByVessel(points []CriticalPoint) map[uint32]Synopsis {
	out := make(map[uint32]Synopsis)
	for _, cp := range points {
		out[cp.MMSI] = append(out[cp.MMSI], cp)
	}
	for _, s := range out {
		s.SortByTime()
	}
	return out
}

// SplitFixesByVessel groups a positional stream per vessel, preserving
// order.
func SplitFixesByVessel(fixes []ais.Fix) map[uint32][]ais.Fix {
	out := make(map[uint32][]ais.Fix)
	for _, f := range fixes {
		out[f.MMSI] = append(out[f.MMSI], f)
	}
	return out
}

// FleetRMSE computes the per-vessel RMSE for a whole run and returns
// the average and maximum over vessels, the two series of the paper's
// Figure 8.
func FleetRMSE(fixes []ais.Fix, points []CriticalPoint) (avg, max float64) {
	origins := SplitFixesByVessel(fixes)
	synopses := SplitByVessel(points)
	var sum float64
	n := 0
	for mmsi, orig := range origins {
		syn := synopses[mmsi]
		if len(syn) == 0 {
			continue
		}
		// The synopsis always retains the newest location of a vessel (it
		// is what map display shows); close it with the final raw fix so
		// the tail after the last detected event reconstructs too.
		last := orig[len(orig)-1]
		if last.Time.After(syn[len(syn)-1].Time) {
			syn = append(syn[:len(syn):len(syn)], CriticalPoint{
				MMSI: mmsi, Pos: last.Pos, Time: last.Time, Type: EventFirst,
			})
		}
		e := RMSE(orig, syn)
		sum += e
		if e > max {
			max = e
		}
		n++
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return avg, max
}
