package tracker

import (
	"errors"
	"time"
)

// Params are the mobility tracking parameters of the paper's Table 3.
// The defaults are the paper's calibrated values for the Aegean dataset.
type Params struct {
	// VMinKnots is the minimum speed for asserting movement: below it a
	// position counts as an instantaneous pause (default 1 knot).
	VMinKnots float64
	// VSlowKnots is the ceiling under which sustained motion counts as
	// "slow" for the slow-motion event (trawling speeds; default 5 knots).
	// The paper folds this into its low-speed notion; a separate ceiling
	// keeps pause and slow motion distinguishable.
	VSlowKnots float64
	// SpeedChangeFrac is α: a relative speed change beyond this fraction
	// emits a speed-change event (default 0.25).
	SpeedChangeFrac float64
	// GapPeriod is ΔT: a reporting silence of at least this duration is a
	// communication gap (default 10 minutes).
	GapPeriod time.Duration
	// TurnThresholdDeg is Δθ: a heading change beyond this angle, either
	// instantaneous or cumulative, emits a turn event (default 15°;
	// the experiments sweep {5°, 10°, 15°, 20°}).
	TurnThresholdDeg float64
	// StopRadiusMeters is r: consecutive pauses within this radius form a
	// long-term stop (default 200 m).
	StopRadiusMeters float64
	// M is the number of most recent positions inspected for long-lasting
	// events and the mean-velocity outlier reference (default 10).
	M int
	// OutlierSpeedFactor flags a position as off-course when the implied
	// speed exceeds this multiple of the vessel's mean speed (and the
	// absolute floor below). Default 4.
	OutlierSpeedFactor float64
	// OutlierMinKnots is the absolute implied-speed floor below which a
	// position is never treated as an outlier. Default 15 knots.
	OutlierMinKnots float64
	// OutlierHeadingDeg additionally requires the implied heading to
	// deviate from the mean course by at least this angle. Default 60°.
	OutlierHeadingDeg float64
	// OutlierRunLimit bounds consecutive rejections: after this many the
	// tracker resynchronizes, accepting that the course truly changed.
	// Default 3.
	OutlierRunLimit int
	// DisableOutlierFilter turns off off-course rejection; exposed for
	// the ablation experiment.
	DisableOutlierFilter bool
}

// DefaultParams returns the paper's calibrated parameter values
// (Table 3, bold entries).
func DefaultParams() Params {
	return Params{
		VMinKnots:          1,
		VSlowKnots:         5,
		SpeedChangeFrac:    0.25,
		GapPeriod:          10 * time.Minute,
		TurnThresholdDeg:   15,
		StopRadiusMeters:   200,
		M:                  10,
		OutlierSpeedFactor: 4,
		OutlierMinKnots:    15,
		OutlierHeadingDeg:  60,
		OutlierRunLimit:    3,
	}
}

// Errors returned by Validate.
var (
	ErrBadSpeedThresholds = errors.New("tracker: need 0 < VMinKnots <= VSlowKnots")
	ErrBadAlpha           = errors.New("tracker: SpeedChangeFrac must be in (0, 1]")
	ErrBadGapPeriod       = errors.New("tracker: GapPeriod must be positive")
	ErrBadTurnThreshold   = errors.New("tracker: TurnThresholdDeg must be in (0, 180]")
	ErrBadStopRadius      = errors.New("tracker: StopRadiusMeters must be positive")
	ErrBadM               = errors.New("tracker: M must be at least 2")
)

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.VMinKnots <= 0 || p.VSlowKnots < p.VMinKnots:
		return ErrBadSpeedThresholds
	case p.SpeedChangeFrac <= 0 || p.SpeedChangeFrac > 1:
		return ErrBadAlpha
	case p.GapPeriod <= 0:
		return ErrBadGapPeriod
	case p.TurnThresholdDeg <= 0 || p.TurnThresholdDeg > 180:
		return ErrBadTurnThreshold
	case p.StopRadiusMeters <= 0:
		return ErrBadStopRadius
	case p.M < 2:
		return ErrBadM
	}
	return nil
}
