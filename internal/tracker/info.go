package tracker

import (
	"slices"
	"time"

	"repro/internal/geo"
)

// VesselInfo is a point-in-time public summary of one tracked vessel's
// motion state — the "current per-vessel state" snapshot the serving
// tier exposes. It is a copy: callers may retain it freely.
type VesselInfo struct {
	MMSI     uint32    `json:"mmsi"`
	LastPos  geo.Point `json:"last_pos"`
	LastSeen time.Time `json:"last_seen"`
	// SpeedKn and HeadingDeg are the velocity implied by the two most
	// recent accepted fixes; zero when fewer than two fixes have arrived.
	SpeedKn    float64 `json:"speed_kn"`
	HeadingDeg float64 `json:"heading_deg"`
	// Odometer readings in meters (total, and since last departure).
	OdometerM       float64 `json:"odometer_m"`
	SinceDepartureM float64 `json:"since_departure_m"`
	// Episode flags of the ongoing long-lasting events.
	Stopped bool `json:"stopped"`
	Slow    bool `json:"slow"`
	GapOpen bool `json:"gap_open"`
	// SynopsisLen is the number of critical points currently retained in
	// the window for this vessel.
	SynopsisLen int `json:"synopsis_len"`
}

// infoOf builds the public summary from live state.
func (tr *Tracker) infoOf(mmsi uint32, st *vesselState) VesselInfo {
	info := VesselInfo{
		MMSI:            mmsi,
		OdometerM:       st.odometerM,
		SinceDepartureM: st.departureM,
		Stopped:         st.stopped,
		Slow:            st.slow,
		GapOpen:         st.gapOpen,
		SynopsisLen:     st.synopsis.Len(),
	}
	if st.haveSeen {
		info.LastSeen = nsTime(st.lastSeenNS)
	}
	if st.haveLast {
		info.LastPos = st.lastPos
		if !st.haveSeen {
			info.LastSeen = nsTime(st.lastTNS)
		}
	}
	if st.haveV {
		info.SpeedKn = st.vPrev.SpeedKnots
		info.HeadingDeg = st.vPrev.HeadingDeg
	}
	return info
}

// Info returns the summary of one vessel; ok is false for vessels
// without live state.
func (tr *Tracker) Info(mmsi uint32) (VesselInfo, bool) {
	st := tr.vessels[mmsi]
	if st == nil {
		return VesselInfo{}, false
	}
	return tr.infoOf(mmsi, st), true
}

// Infos returns the summary of every tracked vessel, ordered by MMSI.
func (tr *Tracker) Infos() []VesselInfo {
	out := make([]VesselInfo, 0, len(tr.vessels))
	for mmsi, st := range tr.vessels {
		out = append(out, tr.infoOf(mmsi, st))
	}
	slices.SortFunc(out, func(a, b VesselInfo) int {
		switch {
		case a.MMSI < b.MMSI:
			return -1
		case a.MMSI > b.MMSI:
			return 1
		}
		return 0
	})
	return out
}
