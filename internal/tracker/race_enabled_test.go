//go:build race

package tracker

// raceEnabled reports whether the race detector is compiled in; the
// allocation-gate tests skip under it because the race runtime inflates
// allocation counts.
const raceEnabled = true
