//go:build !race

package tracker

const raceEnabled = false
