package tracker

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/stream"
)

// toColumnar converts a row batch into the columnar form, appending into
// the caller's arena. Tests deliberately reuse ONE arena across slides:
// the tracker must have finished with the previous slide's columns by the
// time the next batch is staged, exactly like the production Batcher
// NextInto loop.
func toColumnar(b stream.Batch, fb *ais.FixBatch) stream.Batch {
	fb.Reset()
	for _, f := range b.Fixes {
		fb.Append(f)
	}
	return stream.Batch{Cols: fb, Query: b.Query}
}

// TestColumnarEquivalence is the golden test of the columnar hot path:
// feeding the same seeded fleet through struct-of-arrays batches must
// produce byte-identical fresh and delta streams, and identical final
// statistics, to the row path — at every shard count, with a single
// batch arena recycled across all slides.
func TestColumnarEquivalence(t *testing.T) {
	batches := simBatches(t, 120, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	for _, shards := range []int{1, 2, 4} {
		rowTier := NewSharded(params, window, shards)
		colTier := NewSharded(params, window, shards)
		var arena ais.FixBatch
		var critical int
		for i, b := range batches {
			want := rowTier.Slide(b)
			got := colTier.Slide(toColumnar(b, &arena))
			comparePoints(t, i, "fresh", want.Fresh, got.Fresh)
			comparePoints(t, i, "delta", want.Delta, got.Delta)
			critical += len(got.Fresh)
		}
		if critical == 0 {
			t.Fatal("run produced no critical points; equivalence vacuous")
		}
		wantStats, gotStats := rowTier.Stats(), colTier.Stats()
		if wantStats.FixesIn != gotStats.FixesIn || wantStats.Critical != gotStats.Critical ||
			wantStats.Duplicates != gotStats.Duplicates || wantStats.Outliers != gotStats.Outliers {
			t.Errorf("shards=%d: stats differ: row %+v, columnar %+v", shards, wantStats, gotStats)
		}
		for k, v := range wantStats.ByType {
			if gotStats.ByType[k] != v {
				t.Errorf("shards=%d: ByType[%v] = %d, want %d", shards, k, gotStats.ByType[k], v)
			}
		}
		if rowTier.VesselCount() != colTier.VesselCount() {
			t.Errorf("shards=%d: vessel count %d (row) != %d (columnar)",
				shards, rowTier.VesselCount(), colTier.VesselCount())
		}
		rowTier.Close()
		colTier.Close()
	}
}

// TestColumnarArenaReuse pins down the zero-copy contract of the arena:
// once the working set stabilizes, staging the next slide into the same
// FixBatch must not grow it. A regression here (e.g. Reset losing
// capacity) silently reintroduces a per-slide allocation.
func TestColumnarArenaReuse(t *testing.T) {
	batches := simBatches(t, 120, 2)
	var arena ais.FixBatch
	maxLen := 0
	for _, b := range batches {
		toColumnar(b, &arena)
		if arena.Len() > maxLen {
			maxLen = arena.Len()
		}
	}
	if maxLen == 0 {
		t.Fatal("no fixes staged")
	}
	// The arena now holds the high-water capacity; re-staging every batch
	// must not allocate at all.
	allocs := testing.AllocsPerRun(len(batches), func() {
		for _, b := range batches {
			toColumnar(b, &arena)
		}
	})
	if allocs != 0 {
		t.Errorf("re-staging into a warm arena allocated %.1f times per pass, want 0", allocs)
	}
}

// TestSteadyStateSlideAllocs is the allocation-free steady state gate:
// after the tracking tier has warmed (vessel map populated, scratch
// slices at their high-water marks, synopsis windows full), a columnar
// slide must run allocation-free up to a small amortized constant —
// synopsis ring growth and stop-run reallocation are amortized, nothing
// is allocated per fix or per slide.
func TestSteadyStateSlideAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	batches := simBatches(t, 150, 3)
	// Drop the far-future drain batch; it evicts every vessel, which is
	// not a steady state.
	batches = batches[:len(batches)-1]

	// Prebuild the columnar batches so AllocsPerRun sees only Slide.
	cols := make([]stream.Batch, len(batches))
	for i, b := range batches {
		fb := &ais.FixBatch{}
		cols[i] = toColumnar(b, fb)
	}

	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	tier := NewSharded(params, window, 1)
	defer tier.Close()

	warm := len(cols) - 12 // leave 12 slides (one full window) to measure
	if warm < 1 {
		t.Fatalf("run too short: %d slides", len(cols))
	}
	for _, b := range cols[:warm] {
		tier.Slide(b)
	}

	idx := warm
	const runs = 10 // AllocsPerRun adds one warm-up call
	allocs := testing.AllocsPerRun(runs, func() {
		tier.Slide(cols[idx])
		idx++
	})
	if idx != warm+runs+1 {
		t.Fatalf("measured %d slides, want %d", idx-warm, runs+1)
	}
	const maxAllocs = 10
	if allocs > maxAllocs {
		t.Errorf("steady-state slide allocates %.1f times, want <= %d", allocs, maxAllocs)
	}
}
