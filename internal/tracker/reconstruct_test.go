package tracker

import (
	"math"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

func TestSynopsisAtInterpolates(t *testing.T) {
	syn := Synopsis{
		{Pos: geo.Point{Lon: 24, Lat: 37}, Time: t0},
		{Pos: geo.Point{Lon: 25, Lat: 38}, Time: t0.Add(time.Hour)},
	}
	p, ok := syn.At(t0.Add(30 * time.Minute))
	if !ok {
		t.Fatal("!ok")
	}
	if d := geo.Haversine(p, geo.Point{Lon: 24.5, Lat: 37.5}); d > 1 {
		t.Errorf("midpoint off by %.1f m", d)
	}
	// Clamping outside the extent.
	if p, _ := syn.At(t0.Add(-time.Hour)); p != syn[0].Pos {
		t.Errorf("before extent = %v", p)
	}
	if p, _ := syn.At(t0.Add(2 * time.Hour)); p != syn[1].Pos {
		t.Errorf("after extent = %v", p)
	}
	if _, ok := (Synopsis{}).At(t0); ok {
		t.Error("empty synopsis returned ok")
	}
}

func TestRMSEZeroWhenSynopsisKeepsEverything(t *testing.T) {
	fixes := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 90, 12, 30, 30*time.Second)
	syn := make(Synopsis, len(fixes))
	for i, f := range fixes {
		syn[i] = CriticalPoint{MMSI: f.MMSI, Pos: f.Pos, Time: f.Time}
	}
	if e := RMSE(fixes, syn); e > 1e-9 {
		t.Errorf("RMSE = %v, want 0", e)
	}
}

func TestRMSESmallForStraightCourse(t *testing.T) {
	// A straight constant-speed course compressed to its endpoints must
	// reconstruct almost exactly (constant-velocity interpolation).
	fixes := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 77, 14, 60, 30*time.Second)
	syn := Synopsis{
		{Pos: fixes[0].Pos, Time: fixes[0].Time},
		{Pos: fixes[len(fixes)-1].Pos, Time: fixes[len(fixes)-1].Time},
	}
	if e := RMSE(fixes, syn); e > 5 {
		t.Errorf("straight-course RMSE = %.2f m, want < 5", e)
	}
}

func TestRMSECapturesCutCorner(t *testing.T) {
	// An L-shaped course compressed to its endpoints cuts the corner and
	// must show a large deviation; keeping the corner fixes it.
	a := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 0, 15, 20, time.Minute)
	fixes := legFrom(a, geo.Point{}, 90, 15, 20, time.Minute)
	endpoints := Synopsis{
		{Pos: fixes[0].Pos, Time: fixes[0].Time},
		{Pos: fixes[len(fixes)-1].Pos, Time: fixes[len(fixes)-1].Time},
	}
	corner := Synopsis{
		endpoints[0],
		{Pos: fixes[19].Pos, Time: fixes[19].Time},
		endpoints[1],
	}
	eCut := RMSE(fixes, endpoints)
	eKept := RMSE(fixes, corner)
	if eCut < 1000 {
		t.Errorf("corner-cutting RMSE = %.0f m, expected kilometers", eCut)
	}
	if eKept > eCut/10 {
		t.Errorf("keeping the corner should slash RMSE: cut=%.0f kept=%.0f", eCut, eKept)
	}
}

func TestFleetRMSEAndTrackerTogether(t *testing.T) {
	// End to end: track a course with a turn, then reconstruct from the
	// tracker's own critical points. Average error must stay far below
	// the paper's 16 m bound scaled to our noise-free fixture.
	a := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 45, 13, 30, 30*time.Second)
	fixes := legFrom(a, geo.Point{}, 100, 13, 30, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	avg, max := FleetRMSE(fixes, points)
	if avg > 30 {
		t.Errorf("avg RMSE = %.1f m, want <= 30", avg)
	}
	if max > 60 {
		t.Errorf("max RMSE = %.1f m, want <= 60", max)
	}
}

func TestSplitByVesselSorts(t *testing.T) {
	pts := []CriticalPoint{
		{MMSI: 1, Time: t0.Add(2 * time.Minute)},
		{MMSI: 2, Time: t0},
		{MMSI: 1, Time: t0},
	}
	m := SplitByVessel(pts)
	if len(m) != 2 || len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("split = %v", m)
	}
	if !m[1][0].Time.Equal(t0) {
		t.Error("per-vessel synopsis not sorted")
	}
}

func TestRMSEEmptyInputs(t *testing.T) {
	if RMSE(nil, Synopsis{{}}) != 0 {
		t.Error("nil originals")
	}
	if RMSE([]ais.Fix{{}}, nil) != 0 {
		t.Error("nil synopsis")
	}
}

func BenchmarkTrackerIngest(b *testing.B) {
	fixes := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 90, 12, 10000, 30*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := New(DefaultParams(), stream.WindowSpec{Range: 24 * time.Hour, Slide: time.Hour})
		b.StartTimer()
		tr.Slide(stream.Batch{Fixes: fixes, Query: fixes[len(fixes)-1].Time})
	}
}

func TestDistanceBetween(t *testing.T) {
	// A straight 12-knot hour: distance over the full window is one
	// hour at 12 knots ≈ 22.2 km; over half the window, half that.
	fixes := legFrom(nil, geo.Point{Lon: 24, Lat: 37.5}, 90, 12, 60, time.Minute)
	syn := make(Synopsis, 0, len(fixes))
	for i, f := range fixes {
		if i%10 == 0 || i == len(fixes)-1 { // sparse synopsis
			syn = append(syn, CriticalPoint{MMSI: f.MMSI, Pos: f.Pos, Time: f.Time})
		}
	}
	full := syn.DistanceBetween(fixes[0].Time, fixes[len(fixes)-1].Time)
	wantFull := geo.KnotsToMetersPerSecond(12) * 59 * 60
	if math.Abs(full-wantFull) > wantFull*0.02 {
		t.Errorf("full-hour distance = %.0f m, want ≈%.0f", full, wantFull)
	}
	half := syn.DistanceBetween(fixes[0].Time, fixes[len(fixes)/2].Time)
	if math.Abs(half-full/2) > full*0.05 {
		t.Errorf("half-window distance = %.0f m, want ≈%.0f", half, full/2)
	}
	// Degenerate ranges.
	if d := syn.DistanceBetween(fixes[5].Time, fixes[5].Time); d != 0 {
		t.Errorf("zero-length window distance = %v", d)
	}
	if d := (Synopsis{}).DistanceBetween(fixes[0].Time, fixes[9].Time); d != 0 {
		t.Errorf("empty synopsis distance = %v", d)
	}
}
