package tracker

import (
	"sort"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// TestDelayedStreamLateFixAccounting feeds a Delayer-perturbed stream
// (the paper's §4.2 delayed-arrival scenario) through the sharded tier
// and checks the late-fix ledger against an independent replay of the
// admission rules: a fix older than the last query time but still ahead
// of its vessel's clock is accepted late; a fix behind its vessel's
// clock can no longer be sequenced and is dropped.
func TestDelayedStreamLateFixAccounting(t *testing.T) {
	const slide = 10 * time.Minute
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Three vessels reporting every 2 minutes for 2 hours, moving
	// steadily so every fix advances the vessel clock when in order.
	// A fourth vessel reports sparsely (every 15 min): its delayed fixes
	// cross slide boundaries while its own clock lags behind, the
	// late-but-sequenceable case. The dense vessels produce clock-rewind
	// swaps, the late-dropped case.
	var fixes []ais.Fix
	for k := 0; k < 60; k++ {
		for _, mmsi := range []uint32{100, 200, 300} {
			fixes = append(fixes, ais.Fix{
				MMSI: mmsi,
				Pos:  geo.Point{Lon: 23.0 + float64(mmsi%7)*0.1 + float64(k)*0.002, Lat: 37.0},
				Time: t0.Add(time.Duration(2*k) * time.Minute),
			})
		}
	}
	for k := 0; k < 8; k++ {
		fixes = append(fixes, ais.Fix{
			MMSI: 400,
			Pos:  geo.Point{Lon: 24.5 + float64(k)*0.01, Lat: 37.5},
			Time: t0.Add(time.Duration(15*k) * time.Minute),
		})
	}
	sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].Time.Before(fixes[j].Time) })

	delayed := stream.Delayer{MaxDelay: 25 * time.Minute, Fraction: 0.35, Seed: 3}.Apply(fixes)

	batch := func(perturbed []ais.Fix) []stream.Batch {
		b := stream.NewBatcher(stream.NewSliceSource(perturbed), slide)
		var out []stream.Batch
		for {
			bt, ok := b.Next()
			if !ok {
				return out
			}
			out = append(out, bt)
		}
	}

	run := func(batches []stream.Batch) *Sharded {
		s := NewSharded(DefaultParams(), stream.WindowSpec{Range: time.Hour, Slide: slide}, 2)
		t.Cleanup(s.Close)
		for _, bt := range batches {
			s.Slide(bt)
		}
		return s
	}

	// Orderly arrival: nothing is late.
	orderly := run(batch(fixes))
	if acc, drop := orderly.LateFixes(); acc != 0 || drop != 0 {
		t.Errorf("orderly stream counted late fixes: accepted=%d dropped=%d", acc, drop)
	}

	// Independent oracle over the perturbed batches: per-vessel clock
	// plus the previous batch's query time (trackers classify against
	// lastQuery, which updates after each slide's ingestion).
	batches := batch(delayed)
	var lastQ time.Time
	clock := map[uint32]time.Time{}
	var wantAcc, wantDrop int64
	for _, bt := range batches {
		for _, f := range bt.Fixes {
			if c, ok := clock[f.MMSI]; ok && !f.Time.After(c) {
				if f.Time.Before(c) {
					wantDrop++
				}
				continue
			}
			if !lastQ.IsZero() && f.Time.Before(lastQ) {
				wantAcc++
			}
			clock[f.MMSI] = f.Time
		}
		lastQ = bt.Query
	}
	if wantAcc == 0 || wantDrop == 0 {
		t.Fatalf("perturbation too weak to exercise both paths: oracle accepted=%d dropped=%d", wantAcc, wantDrop)
	}

	shaken := run(batches)
	acc, drop := shaken.LateFixes()
	if acc != wantAcc || drop != wantDrop {
		t.Errorf("late ledger: accepted=%d dropped=%d, oracle wants %d/%d", acc, drop, wantAcc, wantDrop)
	}
	st := shaken.Stats()
	if st.LateAccepted != int(wantAcc) || st.LateDropped != int(wantDrop) {
		t.Errorf("merged stats: LateAccepted=%d LateDropped=%d, want %d/%d",
			st.LateAccepted, st.LateDropped, wantAcc, wantDrop)
	}
	// Every original fix reached a tracker: the Delayer reorders, never
	// discards, and dropped-late fixes are counted inside FixesIn.
	if st.FixesIn != len(fixes) {
		t.Errorf("FixesIn=%d, want %d (Delayer must be lossless)", st.FixesIn, len(fixes))
	}
}
