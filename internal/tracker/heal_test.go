package tracker

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// TestSelfHealPanicEquivalence is the tier-level chaos golden test: a
// shard worker panics on every single slide, the tier recovers each
// panic with an in-slide journal re-run, and the merged output must
// stay byte-identical to the serial tracker — zero loss, no quarantine.
func TestSelfHealPanicEquivalence(t *testing.T) {
	batches := simBatches(t, 120, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	serial := New(params, window)
	sharded := NewSharded(params, window, 4)
	defer sharded.Close()
	sharded.EnableSelfHeal(6)
	kills := 0
	sharded.SetFaultHook(func(shard, slide, attempt int) {
		if shard == 1 && attempt == 0 {
			kills++
			panic("injected shard fault")
		}
	})

	for i, b := range batches {
		want := serial.Slide(b)
		got := sharded.Slide(b)
		comparePoints(t, i, "fresh", want.Fresh, got.Fresh)
		comparePoints(t, i, "delta", want.Delta, got.Delta)
	}
	if kills != len(batches) {
		t.Errorf("expected %d injected panics, hook fired %d times", len(batches), kills)
	}
	fs := sharded.FaultStats()
	if fs.Panics != kills || fs.Retries != kills {
		t.Errorf("fault stats: got %+v, want Panics=Retries=%d", fs, kills)
	}
	if fs.Quarantined != 0 || fs.DroppedFixes != 0 || fs.GapSlides != 0 {
		t.Errorf("lossless recovery expected, got %+v", fs)
	}
	ws, gs := serial.Stats(), sharded.Stats()
	if ws.FixesIn != gs.FixesIn || ws.Critical != gs.Critical {
		t.Errorf("stats diverged: serial %+v, sharded %+v", ws, gs)
	}
}

// TestSelfHealStallQuarantineRepair wedges one shard mid-run: the
// watchdog must quarantine it within the slide, the tier must keep
// sliding with the remaining shards (dropping and counting the wedged
// shard's fixes), and RepairShard must replay the journal so that the
// tier state — and all subsequent output — converges back to the
// golden run.
func TestSelfHealStallQuarantineRepair(t *testing.T) {
	batches := simBatches(t, 120, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	const stallShard, stallSlide = 2, 8

	serial := New(params, window)
	sharded := NewSharded(params, window, 4)
	defer sharded.Close()
	sharded.EnableSelfHeal(6)
	sharded.SetSlideTimeout(50 * time.Millisecond)
	release := make(chan struct{})
	defer close(release)
	var once sync.Once
	sharded.SetFaultHook(func(shard, slide, attempt int) {
		if shard == stallShard && slide == stallSlide {
			once.Do(func() { <-release })
		}
	})

	repaired := false
	for i, b := range batches {
		want := serial.Slide(b)
		got := sharded.Slide(b)
		if i+1 < stallSlide || repaired {
			comparePoints(t, i, "fresh", want.Fresh, got.Fresh)
			comparePoints(t, i, "delta", want.Delta, got.Delta)
		}
		if i+1 == stallSlide {
			fs := sharded.FaultStats()
			if fs.Stalls != 1 || fs.Quarantined != 1 {
				t.Fatalf("slide %d: expected one stalled quarantined shard, got %+v", i, fs)
			}
			q := sharded.Quarantined()
			if len(q) != 1 || q[0].Target != "tracker/2" || q[0].Cause != "stall" {
				t.Fatalf("quarantine records: %+v", q)
			}
			if fs.DroppedFixes == 0 {
				t.Fatal("wedged shard's fixes should be counted as dropped")
			}
		}
		// Let the shard miss a couple of slides before the repair, then
		// re-admit it; from here the replayed state must equal golden.
		if i+1 == stallSlide+2 {
			if err := sharded.RepairShard(stallShard); err != nil {
				t.Fatalf("RepairShard: %v", err)
			}
			repaired = true
			if fs := sharded.FaultStats(); fs.Quarantined != 0 || fs.Repairs != 1 {
				t.Fatalf("after repair: %+v", fs)
			}
		}
	}
	// Replay reprocessed every journaled fix, so even the counters of
	// the quarantine window are reconstructed.
	ws, gs := serial.Stats(), sharded.Stats()
	if ws.FixesIn != gs.FixesIn || ws.Critical != gs.Critical || ws.Duplicates != gs.Duplicates {
		t.Errorf("stats diverged after repair: serial %+v, sharded %+v", ws, gs)
	}
	if fs := sharded.FaultStats(); fs.GapSlides != 0 {
		t.Errorf("journal should not have gapped: %+v", fs)
	}
}

// TestSelfHealRepairErrors covers the failure modes of RepairShard and
// the give-up path.
func TestSelfHealRepairErrors(t *testing.T) {
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	sharded := NewSharded(params, window, 2)
	defer sharded.Close()
	sharded.EnableSelfHeal(4)

	if err := sharded.RepairShard(0); err == nil || !strings.Contains(err.Error(), "not quarantined") {
		t.Fatalf("repairing a healthy shard: %v", err)
	}
	if err := sharded.RepairShard(9); err == nil {
		t.Fatal("repairing an out-of-range shard should fail")
	}

	// Force a quarantine via a double panic (live + re-run attempt).
	sharded.SetFaultHook(func(shard, slide, attempt int) {
		if shard == 1 {
			panic("persistent fault")
		}
	})
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sharded.Slide(stream.Batch{Query: start})
	if fs := sharded.FaultStats(); fs.Quarantined != 1 || fs.Panics != 2 {
		t.Fatalf("expected quarantine after double panic, got %+v", fs)
	}
	q := sharded.Quarantined()
	if len(q) != 1 || q[0].Cause != "panic" || !strings.Contains(q[0].Value, "persistent fault") || q[0].Stack == "" {
		t.Fatalf("quarantine record incomplete: %+v", q)
	}

	// Give up: the shard moves to failed and stays out of service.
	sharded.AbandonShard(1)
	fs := sharded.FaultStats()
	if fs.Quarantined != 0 || fs.Failed != 1 {
		t.Fatalf("after abandon: %+v", fs)
	}
	sharded.SetFaultHook(nil)
	sharded.Slide(stream.Batch{Query: start.Add(5 * time.Minute)})
	if len(sharded.Quarantined()) != 0 {
		t.Fatal("failed shard must not re-enter quarantine")
	}

	// A snapshot restore supersedes the failure and re-admits the shard.
	if err := sharded.RestoreSnapshot(Snapshot{}); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if fs := sharded.FaultStats(); fs.Failed != 0 {
		t.Fatalf("restore should clear failed shards: %+v", fs)
	}
}

// TestLateFixAccounting exercises the out-of-order classification: a
// fix older than the last query but ahead of its vessel's clock is
// accepted and counted; a fix behind the vessel's clock is dropped and
// counted.
func TestLateFixAccounting(t *testing.T) {
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	sharded := NewSharded(params, window, 2)
	defer sharded.Close()

	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	pos := func(k int) geo.Point { return geo.Point{Lon: 23.0 + float64(k)*0.001, Lat: 37.0} }
	fix := func(mmsi uint32, k int, at time.Time) ais.Fix {
		return ais.Fix{MMSI: mmsi, Pos: pos(k), Time: at}
	}

	// Slide 1: two vessels report normally.
	sharded.Slide(stream.Batch{Query: t0.Add(10 * time.Minute), Fixes: []ais.Fix{
		fix(100, 0, t0.Add(1*time.Minute)),
		fix(100, 1, t0.Add(5*time.Minute)),
		fix(200, 0, t0.Add(2*time.Minute)),
	}})

	// Slide 2: vessel 100 delivers a delayed fix from slide 1's range —
	// late but sequenceable (accepted) — and a stale duplicate-era fix
	// behind its clock (dropped). Vessel 200 reports normally.
	sharded.Slide(stream.Batch{Query: t0.Add(20 * time.Minute), Fixes: []ais.Fix{
		fix(100, 2, t0.Add(8*time.Minute)),  // late, accepted
		fix(100, 1, t0.Add(3*time.Minute)),  // behind vessel clock, dropped
		fix(200, 1, t0.Add(12*time.Minute)), // on time
	}})

	acc, drop := sharded.LateFixes()
	if acc != 1 || drop != 1 {
		t.Errorf("tier late counters: accepted=%d dropped=%d, want 1/1", acc, drop)
	}
	st := sharded.Stats()
	if st.LateAccepted != 1 || st.LateDropped != 1 {
		t.Errorf("merged stats: %+v, want LateAccepted=1 LateDropped=1", st)
	}
	// Dropped late fixes remain a subset of the duplicate counter.
	if st.Duplicates < st.LateDropped {
		t.Errorf("LateDropped must be a subset of Duplicates: %+v", st)
	}
}

// TestShedStationary verifies the degradation hook: with shedding on, a
// long-stopped vessel's jitter fixes are skipped (counted, clock still
// advancing) while a genuine departure re-enters the full path.
func TestShedStationary(t *testing.T) {
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	sharded := NewSharded(params, window, 1)
	defer sharded.Close()

	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	base := geo.Point{Lon: 23.0, Lat: 37.0}
	var fixes []ais.Fix
	// Enough co-located slow fixes to open a stop episode.
	for k := 0; k < 3*params.M; k++ {
		fixes = append(fixes, ais.Fix{MMSI: 300, Pos: base, Time: t0.Add(time.Duration(k) * time.Minute)})
	}
	sharded.Slide(stream.Batch{Query: t0.Add(time.Duration(3*params.M) * time.Minute), Fixes: fixes})
	info, ok := sharded.Info(300)
	if !ok || !info.Stopped {
		t.Fatalf("expected a stopped vessel, got %+v ok=%v", info, ok)
	}

	sharded.SetShedStationary(true)
	next := t0.Add(time.Duration(3*params.M) * time.Minute)
	sharded.Slide(stream.Batch{Query: next.Add(10 * time.Minute), Fixes: []ais.Fix{
		{MMSI: 300, Pos: base, Time: next.Add(1 * time.Minute)},
		{MMSI: 300, Pos: base, Time: next.Add(2 * time.Minute)},
	}})
	if shed := sharded.ShedFixes(); shed != 2 {
		t.Errorf("shed fixes: %d, want 2", shed)
	}
	if st := sharded.Stats(); st.Shed != 2 {
		t.Errorf("stats shed: %+v", st)
	}
	sharded.SetShedStationary(false)
	sharded.Slide(stream.Batch{Query: next.Add(20 * time.Minute), Fixes: []ais.Fix{
		{MMSI: 300, Pos: base, Time: next.Add(11 * time.Minute)},
	}})
	if shed := sharded.ShedFixes(); shed != 2 {
		t.Errorf("shedding off must stop counting, got %d", shed)
	}
}
