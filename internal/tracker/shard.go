package tracker

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ais"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/supervise"
)

// ShardOf returns the shard owning the given MMSI out of n shards. The
// MMSI is mixed through a finalizer-style integer hash (fmix32) so that
// the mostly-sequential MMSI blocks real registries and the fleet
// simulator assign spread evenly instead of landing on a few shards.
func ShardOf(mmsi uint32, n int) int {
	if n <= 1 {
		return 0
	}
	h := mmsi
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(h % uint32(n))
}

// Sharded is the parallel mobility-tracking tier: per-vessel state is
// split across n single-threaded Tracker shards keyed by MMSI hash, all
// shards advance concurrently on every window slide, and the per-shard
// results are merged deterministically so that the output is exactly
// the critical-point stream a single tracker would have produced
// (fresh points in triggering-fix order, then slide-time gap points in
// MMSI order; delta points sorted by time then MMSI). One shard runs on
// the calling goroutine; the rest run on a persistent worker pool, so
// slides cost no goroutine churn.
//
// A Sharded with one shard never touches the pool and is byte-for-byte
// the legacy serial tracker.
//
// Unlike Tracker.Slide, the SlideResult returned by Sharded.Slide
// aliases tier-owned scratch: Fresh and Delta are valid until the next
// Slide call. The pipeline consumes them within the slide; callers that
// retain them must copy.
type Sharded struct {
	shards []*Tracker
	pool   *shardPool

	// Slide-scoped scratch, reused across slides. Columnar batches are
	// routed as per-shard index lists into the shared FixBatch (colIdx)
	// instead of copying fixes; done is the fan-in channel, allocated
	// once since the non-healing slide drains it completely.
	byShard [][]idxFix
	colIdx  [][]int32
	outs    []shardOut
	heads   []int
	fresh   []CriticalPoint
	delta   []CriticalPoint
	done    chan int

	// adaptive, when non-nil, is the tier's compression tuner (see
	// adaptive.go): it observes raw batches before fan-out and re-tunes
	// the per-vessel-class threshold multipliers between slides.
	adaptive *AdaptiveState

	metrics *shardMetrics

	// Self-healing state (nil unless EnableSelfHeal was called); see
	// heal.go. skip marks shards excluded from the current slide's merge
	// because they are quarantined or failed.
	heal         []shardHeal
	rowScratch   []ais.Fix // columnar→row staging for the journal
	skip         []bool
	journalEvery int
	journalCap   int
	slideSeq     int
	timeout      time.Duration
	faultHook    atomic.Pointer[func(shard, slide, attempt int)]

	// Fault counters, atomics so Health and metric scrapes may read
	// them from other goroutines mid-slide.
	panics      atomic.Int64
	stalls      atomic.Int64
	repairs     atomic.Int64
	retries     atomic.Int64
	quarCount   atomic.Int64
	failedCount atomic.Int64
	dropped     atomic.Int64
	gapSlides   atomic.Int64

	// Tier-wide ingest accounting shared by all shards (see Tracker).
	lateAcc  atomic.Int64
	lateDrop atomic.Int64
	shedCnt  atomic.Int64
	shedOn   atomic.Bool

	closeOnce sync.Once
}

// idxFix is a routed fix tagged with its index in the original batch,
// the key the merge uses to restore global emission order.
type idxFix struct {
	fix ais.Fix
	idx int32
}

// shardOut is one shard's slide outcome.
type shardOut struct {
	gapStart int // offset in the shard's fresh where gap-sweep points begin
	delta    []CriticalPoint
	dur      time.Duration
	panic    *supervise.Quarantine // set when a recoverable job panicked
}

// shardJob is one unit of work for the pool. It carries everything the
// worker needs so that workers never reference the Sharded tier itself
// (which lets an abandoned tier be finalized and its pool reclaimed).
type shardJob struct {
	tr    *Tracker
	fixes []idxFix
	// Columnar form: when cols is non-nil the job's fixes live in the
	// shared batch arena and colIdx lists this shard's batch indices.
	cols    *ais.FixBatch
	colIdx  []int32
	q       time.Time
	out     *shardOut
	done    chan<- int
	i       int
	pending *obs.Gauge // merged-queue depth; nil without metrics

	// Self-heal extras: chaos injection hook, slide ordinal, retry
	// attempt, and whether a panic is contained (quarantined) rather
	// than propagated (legacy crash-the-process behavior).
	hook        *func(shard, slide, attempt int)
	slide       int
	attempt     int
	recoverable bool
}

// shardPool is a fixed set of long-lived workers fed over one shared
// job queue. It is deliberately free of any back-reference to Sharded.
type shardPool struct {
	jobs chan shardJob
	stop chan struct{}
}

func newShardPool(workers int) *shardPool {
	p := &shardPool{
		jobs: make(chan shardJob, workers),
		stop: make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *shardPool) worker() {
	for {
		select {
		case j := <-p.jobs:
			runShard(j)
		case <-p.stop:
			return
		}
	}
}

// addWorker grows the pool by one worker: used when self-healing is
// enabled (so every shard runs pooled and the caller is free to
// watchdog) and to replace a worker lost inside a wedged shard.
func (p *shardPool) addWorker() { go p.worker() }

// runShard advances one shard through a slide and publishes its result.
// Recoverable jobs convert a panic — the shard's own state machine or an
// injected fault — into a quarantine record on the job's out slot
// instead of unwinding the worker; non-recoverable jobs keep the legacy
// crash-the-process behavior.
func runShard(j shardJob) {
	if j.recoverable {
		defer func() {
			if r := recover(); r != nil {
				j.out.panic = &supervise.Quarantine{
					Target: fmt.Sprintf("tracker/%d", j.i),
					Cause:  "panic",
					Value:  fmt.Sprint(r),
					Stack:  string(debug.Stack()),
					Since:  time.Now(),
				}
				if j.done != nil {
					j.done <- j.i
				}
			}
		}()
	}
	start := time.Now()
	if j.hook != nil {
		(*j.hook)(j.i, j.slide, j.attempt)
	}
	j.tr.beginSlide()
	if j.cols != nil {
		for _, idx := range j.colIdx {
			j.tr.ingestColsIndexed(j.cols, idx)
		}
	} else {
		for _, xf := range j.fixes {
			j.tr.ingestIndexed(xf.fix, xf.idx)
		}
	}
	gapStart, delta := j.tr.finishSlide(j.q)
	*j.out = shardOut{gapStart: gapStart, delta: delta, dur: time.Since(start)}
	if j.pending != nil {
		j.pending.Add(1)
	}
	if j.done != nil {
		j.done <- j.i
	}
}

// NewSharded returns a sharded tracking tier with the given number of
// shards (values below 1 are clamped to 1; 1 is the exact legacy serial
// tracker). All shards share the same parameters and window.
func NewSharded(params Params, window stream.WindowSpec, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded{
		shards:  make([]*Tracker, shards),
		byShard: make([][]idxFix, shards),
		colIdx:  make([][]int32, shards),
		outs:    make([]shardOut, shards),
		heads:   make([]int, shards),
		done:    make(chan int, shards),
	}
	for i := range s.shards {
		s.shards[i] = New(params, window)
		s.shards[i].indexing = shards > 1
		s.wireShared(s.shards[i])
	}
	if shards > 1 {
		s.pool = newShardPool(shards - 1)
		// Reclaim the pool goroutines if the tier is dropped without an
		// explicit Close (benchmarks, tests, short-lived drivers). The
		// workers reference only the pool's channels, never s, so an
		// unreachable tier does get finalized.
		runtime.SetFinalizer(s, (*Sharded).Close)
	}
	return s
}

// DefaultShards is the shard count used when a configuration leaves it
// zero: one shard per available CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// Close stops the worker pool. It must not be called concurrently with
// Slide. Closing is idempotent; a closed tier must not slide again.
func (s *Sharded) Close() {
	s.closeOnce.Do(func() {
		if s.pool != nil {
			close(s.pool.stop)
		}
		runtime.SetFinalizer(s, nil)
	})
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Params returns the tracking parameters (identical across shards).
func (s *Sharded) Params() Params { return s.shards[0].Params() }

// shardFor returns the shard owning the vessel.
func (s *Sharded) shardFor(mmsi uint32) *Tracker {
	return s.shards[ShardOf(mmsi, len(s.shards))]
}

// wireShared points a shard at the tier-wide accounting atomics and the
// compression tuner (nil unless EnableAdaptive was called).
func (s *Sharded) wireShared(tr *Tracker) {
	tr.lateAcc = &s.lateAcc
	tr.lateDrop = &s.lateDrop
	tr.shedCnt = &s.shedCnt
	tr.shed = &s.shedOn
	tr.adaptive = s.adaptive
}

// SetShedStationary toggles overload shedding: while on, fixes from
// long-stopped vessels only advance the vessel clock (see Tracker
// ingest). Safe to call from any goroutine.
func (s *Sharded) SetShedStationary(on bool) { s.shedOn.Store(on) }

// LateFixes returns the tier-wide count of late fixes accepted
// (timestamp behind the last query but still sequenced) and dropped
// (behind their vessel's clock). Safe to call from any goroutine.
func (s *Sharded) LateFixes() (accepted, dropped int64) {
	return s.lateAcc.Load(), s.lateDrop.Load()
}

// ShedFixes returns the tier-wide count of fixes shed under overload
// degradation. Safe to call from any goroutine.
func (s *Sharded) ShedFixes() int64 { return s.shedCnt.Load() }

// Slide processes one batch across all shards and merges the results.
// The returned Fresh and Delta slices are tier-owned scratch, valid
// until the next Slide.
func (s *Sharded) Slide(b stream.Batch) SlideResult {
	if s.adaptive != nil {
		// Observe raw fixes and (periodically) re-tune the per-class
		// multipliers before fan-out: the coordinator runs serially here,
		// and the job-channel sends below publish the updated multipliers
		// to the pool workers.
		s.adaptive.observe(b)
	}
	if s.heal != nil {
		return s.slideHealed(b)
	}
	n := len(s.shards)
	if n == 1 {
		tr := s.shards[0]
		start := time.Now()
		tr.beginSlide()
		if b.Cols != nil {
			cols := b.Cols
			for i := range cols.MMSI {
				tr.ingest(cols.MMSI[i], cols.Lon[i], cols.Lat[i], cols.TimeNS[i])
			}
		} else {
			for _, f := range b.Fixes {
				tr.ingestFix(f)
			}
		}
		_, delta := tr.finishSlide(b.Query)
		if s.metrics != nil {
			s.metrics.shardDur[0].ObserveDuration(time.Since(start))
			s.metrics.shardFixes[0].Add(uint64(b.Len()))
		}
		return SlideResult{Query: b.Query, Fresh: tr.fresh, Delta: delta}
	}

	// Route the batch: each fix goes to the shard owning its vessel,
	// tagged with its batch index. Columnar batches route as index lists
	// into the shared arena — no fix is copied. The routing buffers are
	// reused across slides.
	if b.Cols != nil {
		cols := b.Cols
		for i := range s.colIdx {
			s.colIdx[i] = s.colIdx[i][:0]
		}
		for i, mmsi := range cols.MMSI {
			sh := ShardOf(mmsi, n)
			s.colIdx[sh] = append(s.colIdx[sh], int32(i))
		}
	} else {
		for i := range s.byShard {
			s.byShard[i] = s.byShard[i][:0]
		}
		for i, f := range b.Fixes {
			sh := ShardOf(f.MMSI, n)
			s.byShard[sh] = append(s.byShard[sh], idxFix{fix: f, idx: int32(i)})
		}
	}

	// Fan out: shards 1..n-1 to the pool, shard 0 on this goroutine. The
	// fan-in channel is tier-owned; every slide drains it completely.
	var pending *obs.Gauge
	if s.metrics != nil {
		pending = s.metrics.mergeQueue
	}
	for i := 1; i < n; i++ {
		j := shardJob{
			tr: s.shards[i], q: b.Query,
			out: &s.outs[i], done: s.done, i: i, pending: pending,
		}
		if b.Cols != nil {
			j.cols, j.colIdx = b.Cols, s.colIdx[i]
		} else {
			j.fixes = s.byShard[i]
		}
		s.pool.jobs <- j
	}
	j0 := shardJob{
		tr: s.shards[0], q: b.Query,
		out: &s.outs[0], done: nil, i: 0, pending: pending,
	}
	if b.Cols != nil {
		j0.cols, j0.colIdx = b.Cols, s.colIdx[0]
	} else {
		j0.fixes = s.byShard[0]
	}
	runShard(j0)
	for got := 1; got < n; got++ {
		<-s.done
	}

	mergeStart := time.Now()
	s.merge(n, pending)
	if s.metrics != nil {
		for i := range s.outs {
			s.metrics.shardDur[i].ObserveDuration(s.outs[i].dur)
			if b.Cols != nil {
				s.metrics.shardFixes[i].Add(uint64(len(s.colIdx[i])))
			} else {
				s.metrics.shardFixes[i].Add(uint64(len(s.byShard[i])))
			}
		}
		s.metrics.mergeDur.ObserveDuration(time.Since(mergeStart))
	}
	return SlideResult{Query: b.Query, Fresh: s.fresh, Delta: s.delta}
}

// merge recombines the per-shard slide outputs into the exact serial
// emission order:
//
//   - ingest-time points, k-way merged on the batch index of their
//     triggering fix (each index lives in exactly one shard, so the
//     interleaving is unique);
//   - slide-time gap-sweep points, k-way merged on MMSI (each shard's
//     sweep is MMSI-sorted and the MMSI sets are disjoint);
//   - delta points, k-way merged on (time, MMSI) — the same key the
//     serial tracker stable-sorts by, with cross-shard ties impossible
//     because equal keys imply equal MMSIs.
func (s *Sharded) merge(n int, pending *obs.Gauge) {
	s.fresh = s.fresh[:0]
	s.delta = s.delta[:0]

	// Ingest segment, by triggering-fix index.
	for i := 0; i < n; i++ {
		s.heads[i] = 0
	}
	for {
		best := -1
		var bestIdx int32
		for i := 0; i < n; i++ {
			if s.skip != nil && s.skip[i] {
				continue
			}
			h := s.heads[i]
			if h >= s.outs[i].gapStart {
				continue
			}
			if idx := s.shards[i].freshIdx[h]; best == -1 || idx < bestIdx {
				best, bestIdx = i, idx
			}
		}
		if best == -1 {
			break
		}
		s.fresh = append(s.fresh, s.shards[best].fresh[s.heads[best]])
		s.heads[best]++
	}

	// Gap-sweep segment, by MMSI.
	for {
		best := -1
		var bestMMSI uint32
		for i := 0; i < n; i++ {
			if s.skip != nil && s.skip[i] {
				continue
			}
			h := s.heads[i]
			if h >= len(s.shards[i].fresh) {
				continue
			}
			if m := s.shards[i].fresh[h].MMSI; best == -1 || m < bestMMSI {
				best, bestMMSI = i, m
			}
		}
		if best == -1 {
			break
		}
		s.fresh = append(s.fresh, s.shards[best].fresh[s.heads[best]])
		s.heads[best]++
	}

	// Delta stream, by (time, MMSI).
	for i := 0; i < n; i++ {
		s.heads[i] = 0
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if s.skip != nil && s.skip[i] {
				continue
			}
			h := s.heads[i]
			if h >= len(s.outs[i].delta) {
				continue
			}
			if best == -1 || compareDelta(s.outs[i].delta[h], s.outs[best].delta[s.heads[best]]) < 0 {
				best = i
			}
		}
		if best == -1 {
			break
		}
		s.delta = append(s.delta, s.outs[best].delta[s.heads[best]])
		s.heads[best]++
	}
	if pending != nil {
		pending.Add(-float64(n))
	}
}

// outOfService reports whether a shard is quarantined or failed. Such a
// shard's Tracker may still be mutated by a wedged goroutine, so every
// read path must skip it until a repair swaps in a rebuilt tracker.
func (s *Sharded) outOfService(i int) bool {
	return s.heal != nil && (s.heal[i].quarantined || s.heal[i].failed)
}

// Stats returns the merged counter snapshot across all shards.
// Quarantined shards are excluded (their trackers are unsafe to read);
// their counters reappear once a repair rebuilds them from the journal.
func (s *Sharded) Stats() Stats {
	out := Stats{ByType: make(map[EventType]int)}
	for i, sh := range s.shards {
		if s.outOfService(i) {
			continue
		}
		out.FixesIn += sh.stats.FixesIn
		out.Duplicates += sh.stats.Duplicates
		out.Outliers += sh.stats.Outliers
		out.Critical += sh.stats.Critical
		out.LateAccepted += sh.stats.LateAccepted
		out.LateDropped += sh.stats.LateDropped
		out.Shed += sh.stats.Shed
		for k, v := range sh.stats.ByType {
			out.ByType[k] += v
		}
	}
	return out
}

// VesselCount returns the number of vessels with live state across all
// shards.
func (s *Sharded) VesselCount() int {
	n := 0
	for i, sh := range s.shards {
		if s.outOfService(i) {
			continue
		}
		n += sh.VesselCount()
	}
	return n
}

// Odometer returns a vessel's traveled distance; see Tracker.Odometer.
func (s *Sharded) Odometer(mmsi uint32) (totalM, sinceDepartureM float64, ok bool) {
	if s.outOfService(ShardOf(mmsi, len(s.shards))) {
		return 0, 0, false
	}
	return s.shardFor(mmsi).Odometer(mmsi)
}

// Synopsis returns the retained critical points of one vessel; see
// Tracker.Synopsis.
func (s *Sharded) Synopsis(mmsi uint32) []CriticalPoint {
	if s.outOfService(ShardOf(mmsi, len(s.shards))) {
		return nil
	}
	return s.shardFor(mmsi).Synopsis(mmsi)
}

// Info returns the public summary of one vessel; see Tracker.Info.
func (s *Sharded) Info(mmsi uint32) (VesselInfo, bool) {
	if s.outOfService(ShardOf(mmsi, len(s.shards))) {
		return VesselInfo{}, false
	}
	return s.shardFor(mmsi).Info(mmsi)
}

// Infos returns the summary of every tracked vessel, ordered by MMSI.
func (s *Sharded) Infos() []VesselInfo {
	if len(s.shards) == 1 && s.heal == nil {
		return s.shards[0].Infos()
	}
	var out []VesselInfo
	for i, sh := range s.shards {
		if s.outOfService(i) {
			continue
		}
		out = append(out, sh.Infos()...)
	}
	slices.SortFunc(out, func(a, b VesselInfo) int {
		switch {
		case a.MMSI < b.MMSI:
			return -1
		case a.MMSI > b.MMSI:
			return 1
		}
		return 0
	})
	return out
}

// shardMetrics is the tier's observability wiring.
type shardMetrics struct {
	shardDur   []*obs.Histogram
	shardFixes []*obs.Counter
	mergeDur   *obs.Histogram
	mergeQueue *obs.Gauge
}

// RegisterMetrics exposes the tier's runtime metrics: per-shard slide
// duration histograms and routed-fix counters, the merged-result queue
// depth (shards finished but not yet folded into the slide output), and
// the merge cost itself. Call before the pipeline starts sliding.
func (s *Sharded) RegisterMetrics(r *obs.Registry) {
	m := &shardMetrics{
		shardDur:   make([]*obs.Histogram, len(s.shards)),
		shardFixes: make([]*obs.Counter, len(s.shards)),
		mergeDur: r.Histogram("maritime_tracker_merge_seconds",
			"Per-slide cost of merging per-shard tracker results into the deterministic output order.", nil, nil),
		mergeQueue: r.Gauge("maritime_tracker_merged_queue_depth",
			"Shards that finished the current slide but whose results are not yet merged.", nil),
	}
	for i := range s.shards {
		lbl := obs.Labels{"shard": strconv.Itoa(i)}
		m.shardDur[i] = r.Histogram("maritime_tracker_shard_slide_seconds",
			"Per-slide mobility tracking cost of one shard, in seconds.", lbl, nil)
		m.shardFixes[i] = r.Counter("maritime_tracker_shard_fixes_total",
			"Position fixes routed to this shard.", lbl)
	}
	r.GaugeFunc("maritime_tracker_shards",
		"Number of parallel mobility-tracker shards.", nil,
		func() float64 { return float64(len(s.shards)) })
	r.CounterFunc("maritime_tracker_late_fixes_total",
		"Out-of-order fixes, split by outcome: accepted (older than the last query but still sequenced) or dropped (behind their vessel's clock).",
		obs.Labels{"result": "accepted"},
		func() float64 { return float64(s.lateAcc.Load()) })
	r.CounterFunc("maritime_tracker_late_fixes_total",
		"Out-of-order fixes, split by outcome: accepted (older than the last query but still sequenced) or dropped (behind their vessel's clock).",
		obs.Labels{"result": "dropped"},
		func() float64 { return float64(s.lateDrop.Load()) })
	r.CounterFunc("maritime_tracker_shed_fixes_total",
		"Fixes of long-stopped vessels skipped under overload degradation.",
		nil, func() float64 { return float64(s.shedCnt.Load()) })
	r.CounterFunc("maritime_tracker_shard_panics_total",
		"Shard-worker panics recovered by the self-healing tier.",
		nil, func() float64 { return float64(s.panics.Load()) })
	r.CounterFunc("maritime_tracker_shard_stalls_total",
		"Shards quarantined by the per-slide stall watchdog.",
		nil, func() float64 { return float64(s.stalls.Load()) })
	r.CounterFunc("maritime_tracker_shard_repairs_total",
		"Shard recoveries: in-slide journal re-runs plus quarantine repairs.",
		nil, func() float64 { return float64(s.retries.Load() + s.repairs.Load()) })
	r.GaugeFunc("maritime_tracker_shards_quarantined",
		"Shards currently quarantined and awaiting repair.",
		nil, func() float64 { return float64(s.quarCount.Load()) })
	r.CounterFunc("maritime_tracker_shard_dropped_fixes_total",
		"Fixes dropped because their shard was out of service.",
		nil, func() float64 { return float64(s.dropped.Load()) })
	s.metrics = m
}
