package tracker

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// Adaptive trajectory compression, after "Optimizing Vessel Trajectory
// Compression" (Fikioris & Patroumpas): instead of one fleet-wide set of
// critical-point thresholds, each vessel class gets its thresholds
// scaled by a multiplier that is periodically re-tuned against a
// reconstruction-error budget. Vessels are classed by observed speed
// band — a docked bunker barge tolerates a much coarser synopsis than a
// hydrofoil — and the tuner picks, per class, the largest (most
// compressing) multiplier whose reconstruction RMSE over recently
// sampled raw trajectories stays within budget.
//
// The tuner is strictly opt-in: a tier without EnableAdaptive carries a
// nil *AdaptiveState, every threshold passes through unscaled, and the
// output is bit-identical to the fixed-threshold tracker. With the tuner
// on, multipliers only change between slides, on the coordinating
// goroutine, before shard fan-out: the job-channel sends publish them to
// the pool workers, so shards never observe a mid-slide change.

// Speed-band vessel classes.
const (
	classAnchored = iota // below the moving threshold
	classSlow            // moving, at or below the slow-motion band
	classCruise          // ordinary transit
	classFast            // high-speed craft
	numSpeedClasses
)

// classOf buckets a reference speed into its vessel class.
func classOf(speedKn float64, p *Params) int {
	switch {
	case speedKn <= p.VMinKnots:
		return classAnchored
	case speedKn <= p.VSlowKnots:
		return classSlow
	case speedKn <= 3*p.VSlowKnots:
		return classCruise
	default:
		return classFast
	}
}

// AdaptiveConfig tunes the compression tuner.
type AdaptiveConfig struct {
	// RMSEBudgetMeters is the reconstruction-error budget: the largest
	// acceptable root-mean-square distance between raw positions and the
	// trajectory rebuilt from critical points alone.
	RMSEBudgetMeters float64
	// EvalEverySlides is the re-tuning cadence.
	EvalEverySlides int
	// SampleVessels caps how many vessels per class are replayed during
	// one evaluation.
	SampleVessels int
	// SampleFixesPerVessel caps the raw fixes buffered per sampled
	// vessel between evaluations.
	SampleFixesPerVessel int
	// Multipliers is the candidate threshold-multiplier ladder. Values
	// below 1 tighten compression, values above loosen it. 1 (the fixed
	// default) is always considered even if absent.
	Multipliers []float64
}

// DefaultAdaptiveConfig returns a conservative tuner configuration: a
// 100 m error budget, re-tuned every 32 slides over up to 8 vessels per
// class.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		RMSEBudgetMeters:     100,
		EvalEverySlides:      32,
		SampleVessels:        8,
		SampleFixesPerVessel: 256,
		Multipliers:          []float64{4, 3, 2, 1.5, 1},
	}
}

// Validate checks the configuration.
func (c *AdaptiveConfig) Validate() error {
	if c.RMSEBudgetMeters <= 0 {
		return fmt.Errorf("adaptive: RMSEBudgetMeters must be positive")
	}
	if c.EvalEverySlides <= 0 {
		return fmt.Errorf("adaptive: EvalEverySlides must be positive")
	}
	if c.SampleVessels <= 0 || c.SampleFixesPerVessel <= 0 {
		return fmt.Errorf("adaptive: sample sizes must be positive")
	}
	for _, m := range c.Multipliers {
		if m <= 0 {
			return fmt.Errorf("adaptive: multiplier %v must be positive", m)
		}
	}
	return nil
}

// vesselSample is the raw-fix buffer of one sampled vessel.
type vesselSample struct {
	fixes []ais.Fix
}

// AdaptiveState is the tier-level tuner state. It is mutated only on the
// coordinating goroutine (inside Sharded.Slide, before fan-out); shard
// workers read the multiplier table through the happens-before edge of
// their job-channel receive.
type AdaptiveState struct {
	cfg    AdaptiveConfig
	params Params
	window stream.WindowSpec

	mults   [numSpeedClasses]float64
	samples map[uint32]*vesselSample
	slides  int

	lastRMSE [numSpeedClasses]float64
}

func newAdaptiveState(cfg AdaptiveConfig, params Params, window stream.WindowSpec) *AdaptiveState {
	a := &AdaptiveState{
		cfg:     cfg,
		params:  params,
		window:  window,
		samples: make(map[uint32]*vesselSample),
	}
	if !slices.Contains(a.cfg.Multipliers, 1) {
		a.cfg.Multipliers = append(slices.Clone(a.cfg.Multipliers), 1)
	}
	// Consider the most compressing candidates first: the first one
	// within budget wins.
	slices.Sort(a.cfg.Multipliers)
	slices.Reverse(a.cfg.Multipliers)
	for i := range a.mults {
		a.mults[i] = 1
	}
	return a
}

// EnableAdaptive turns on adaptive compression for the tier. It must be
// called before the first Slide.
func (s *Sharded) EnableAdaptive(cfg AdaptiveConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.adaptive = newAdaptiveState(cfg, s.Params(), s.shards[0].window)
	for _, tr := range s.shards {
		tr.adaptive = s.adaptive
	}
	return nil
}

// Multipliers returns the current per-class threshold multipliers,
// indexed anchored/slow/cruise/fast. For observability and tests; call
// between slides.
func (s *Sharded) Multipliers() []float64 {
	if s.adaptive == nil {
		return nil
	}
	return s.adaptive.mults[:]
}

// multFor resolves the threshold multiplier for a vessel whose reference
// speed (its previous velocity) is known. Vessels without an established
// velocity keep the default thresholds.
func (a *AdaptiveState) multFor(speedKn float64, haveV bool) float64 {
	if !haveV {
		return 1
	}
	return a.mults[classOf(speedKn, &a.params)]
}

// observe folds one slide's raw batch into the sample buffers and
// re-tunes on cadence. Runs serially on the coordinator.
func (a *AdaptiveState) observe(b stream.Batch) {
	sampleCap := a.cfg.SampleVessels * numSpeedClasses * 2
	record := func(f ais.Fix) {
		vs := a.samples[f.MMSI]
		if vs == nil {
			if len(a.samples) >= sampleCap {
				return
			}
			vs = &vesselSample{}
			a.samples[f.MMSI] = vs
		}
		if len(vs.fixes) < a.cfg.SampleFixesPerVessel {
			vs.fixes = append(vs.fixes, f)
		}
	}
	if b.Cols != nil {
		for i := 0; i < b.Cols.Len(); i++ {
			record(b.Cols.At(i))
		}
	} else {
		for _, f := range b.Fixes {
			record(f)
		}
	}
	a.slides++
	if a.slides%a.cfg.EvalEverySlides == 0 {
		a.evaluate()
		clear(a.samples)
	}
}

// meanSpeedOf estimates a sampled trajectory's reference speed in knots:
// total great-circle distance over total elapsed time.
func meanSpeedOf(fixes []ais.Fix) (float64, bool) {
	var dist float64
	for i := 1; i < len(fixes); i++ {
		dist += geo.Haversine(fixes[i-1].Pos, fixes[i].Pos)
	}
	dt := fixes[len(fixes)-1].Time.Sub(fixes[0].Time).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return geo.MetersPerSecondToKnots(dist / dt), true
}

// evaluate re-tunes every class that has samples: each candidate
// multiplier is trialled by replaying the class's sampled trajectories
// through a throwaway fixed-threshold tracker with scaled parameters,
// reconstructing each trajectory from the critical points it emits, and
// measuring the RMSE against the raw positions. The largest candidate
// within budget wins; a class with no passing candidate falls back to
// the default thresholds.
func (a *AdaptiveState) evaluate() {
	var byClass [numSpeedClasses][][]ais.Fix
	for _, vs := range a.samples {
		if len(vs.fixes) < 2*a.params.M {
			continue // too short to exercise the run detectors
		}
		speed, ok := meanSpeedOf(vs.fixes)
		if !ok {
			continue
		}
		c := classOf(speed, &a.params)
		if len(byClass[c]) < a.cfg.SampleVessels {
			byClass[c] = append(byClass[c], vs.fixes)
		}
	}
	for c := range byClass {
		if len(byClass[c]) == 0 {
			continue // no evidence: keep the current multiplier
		}
		chosen := 1.0
		for _, m := range a.cfg.Multipliers {
			rmse, ok := a.trialRMSE(byClass[c], m)
			if !ok {
				continue
			}
			if rmse <= a.cfg.RMSEBudgetMeters {
				chosen = m
				a.lastRMSE[c] = rmse
				break
			}
		}
		a.mults[c] = chosen
	}
}

// scaledParams applies a threshold multiplier the same way ingest does.
func (a *AdaptiveState) scaledParams(m float64) Params {
	p := a.params
	p.TurnThresholdDeg *= m
	p.SpeedChangeFrac = math.Min(p.SpeedChangeFrac*m, 1)
	p.StopRadiusMeters *= m
	return p
}

// trialRMSE replays the sampled trajectories through a throwaway tracker
// at the given multiplier and returns the pooled reconstruction RMSE.
func (a *AdaptiveState) trialRMSE(trajs [][]ais.Fix, m float64) (float64, bool) {
	var sumSq float64
	var n int
	for _, fixes := range trajs {
		tr := New(a.scaledParams(m), a.window)
		res := tr.Slide(stream.Batch{
			Fixes: fixes,
			Query: fixes[len(fixes)-1].Time.Add(a.window.Slide),
		})
		for _, f := range fixes {
			d, ok := reconstructError(res.Fresh, f)
			if !ok {
				continue
			}
			sumSq += d * d
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return math.Sqrt(sumSq / float64(n)), true
}

// reconstructError rebuilds the position at f.Time from the critical
// points alone — time-proportional interpolation between the bracketing
// points, as the paper's trajectory reconstruction does — and returns
// the great-circle distance to the raw position.
func reconstructError(cps []CriticalPoint, f ais.Fix) (float64, bool) {
	if len(cps) == 0 {
		return 0, false
	}
	// Critical points are emitted in near-time order; find the bracket
	// around f.Time among points of the same vessel.
	var prev, next *CriticalPoint
	for i := range cps {
		cp := &cps[i]
		if cp.MMSI != f.MMSI {
			continue
		}
		if !cp.Time.After(f.Time) {
			if prev == nil || cp.Time.After(prev.Time) {
				prev = cp
			}
		} else if next == nil || cp.Time.Before(next.Time) {
			next = cp
		}
	}
	switch {
	case prev == nil && next == nil:
		return 0, false
	case prev == nil:
		return geo.Haversine(next.Pos, f.Pos), true
	case next == nil:
		return geo.Haversine(prev.Pos, f.Pos), true
	}
	span := next.Time.Sub(prev.Time).Seconds()
	if span <= 0 {
		return geo.Haversine(prev.Pos, f.Pos), true
	}
	frac := f.Time.Sub(prev.Time).Seconds() / span
	rec := geo.Interpolate(prev.Pos, next.Pos, frac)
	return geo.Haversine(rec, f.Pos), true
}

// LastRMSE returns the reconstruction RMSE measured for each class at
// its last re-tuning (zero for classes never tuned). For observability
// and tests; call between slides.
func (s *Sharded) LastRMSE() []float64 {
	if s.adaptive == nil {
		return nil
	}
	return s.adaptive.lastRMSE[:]
}
