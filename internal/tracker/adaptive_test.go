package tracker

import (
	"math"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/stream"
)

// runTier replays the batches through a tier, collecting every fresh
// critical point (copied out of the tier's scratch).
func runTier(tier *Sharded, batches []stream.Batch) []CriticalPoint {
	var cps []CriticalPoint
	for _, b := range batches {
		res := tier.Slide(b)
		cps = append(cps, res.Fresh...)
	}
	return cps
}

// globalRMSE reconstructs every raw fix from the critical-point synopsis
// alone (time-proportional interpolation between bracketing points, the
// paper's trajectory reconstruction) and pools the error fleet-wide.
func globalRMSE(t *testing.T, cps []CriticalPoint, fixes []ais.Fix) float64 {
	t.Helper()
	var sumSq float64
	var n int
	for _, f := range fixes {
		d, ok := reconstructError(cps, f)
		if !ok {
			continue
		}
		sumSq += d * d
		n++
	}
	if n == 0 {
		t.Fatal("no fix could be reconstructed")
	}
	return math.Sqrt(sumSq / float64(n))
}

// TestAdaptiveCompressionWithinBudget is the fleetsim ground-truth test
// of the adaptive tier: with the tuner on, the synopsis must get smaller
// (better compression than the fixed thresholds) while the fleet-wide
// reconstruction RMSE stays within the configured budget.
func TestAdaptiveCompressionWithinBudget(t *testing.T) {
	batches := simBatches(t, 120, 3)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	var fixes []ais.Fix
	for _, b := range batches {
		fixes = append(fixes, b.Fixes...)
	}

	fixed := NewSharded(params, window, 1)
	fixedCPs := runTier(fixed, batches)
	fixedStats := fixed.Stats()
	fixed.Close()

	cfg := DefaultAdaptiveConfig()
	// Re-tune fast enough for a 3 h run while leaving the 2·M-fix sample
	// floor reachable (fleetsim vessels report ~2 fixes per 5 min slide).
	cfg.EvalEverySlides = 12
	adaptive := NewSharded(params, window, 2)
	if err := adaptive.EnableAdaptive(cfg); err != nil {
		t.Fatal(err)
	}
	adaptiveCPs := runTier(adaptive, batches)
	adaptiveStats := adaptive.Stats()

	if adaptiveStats.FixesIn != fixedStats.FixesIn {
		t.Fatalf("fix intake differs: %d adaptive, %d fixed", adaptiveStats.FixesIn, fixedStats.FixesIn)
	}
	tuned := false
	for _, m := range adaptive.Multipliers() {
		if m > 1 {
			tuned = true
		}
	}
	if !tuned {
		t.Fatal("tuner never loosened any class; test exercises nothing")
	}
	if adaptiveStats.Critical >= fixedStats.Critical {
		t.Errorf("adaptive synopsis not smaller: %d critical points, fixed %d",
			adaptiveStats.Critical, fixedStats.Critical)
	}

	budget := cfg.RMSEBudgetMeters
	if rmse := globalRMSE(t, adaptiveCPs, fixes); rmse > budget {
		t.Errorf("adaptive reconstruction RMSE %.1f m exceeds %.0f m budget", rmse, budget)
	}
	// Sanity: the fixed-threshold synopsis reconstructs at least as well.
	fixedRMSE := globalRMSE(t, fixedCPs, fixes)
	adaptiveRMSE := globalRMSE(t, adaptiveCPs, fixes)
	t.Logf("RMSE fixed %.1f m, adaptive %.1f m; critical points fixed %d, adaptive %d; mults %v",
		fixedRMSE, adaptiveRMSE, fixedStats.Critical, adaptiveStats.Critical, adaptive.Multipliers())
	for c, rmse := range adaptive.LastRMSE() {
		if rmse > budget {
			t.Errorf("class %d tuned at sampled RMSE %.1f m, above budget %.0f m", c, rmse, budget)
		}
	}
	adaptive.Close()
}

// TestAdaptiveUnityIsExact pins the opt-in contract from the other side:
// a tuner restricted to the multiplier 1 must leave the output
// bit-identical to a tier without the tuner — the adaptive plumbing
// itself (per-vessel multiplier resolution, observation sampling) may
// not perturb a single critical point.
func TestAdaptiveUnityIsExact(t *testing.T) {
	batches := simBatches(t, 80, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	plain := NewSharded(params, window, 2)
	unity := NewSharded(params, window, 2)
	cfg := DefaultAdaptiveConfig()
	cfg.Multipliers = []float64{1}
	cfg.EvalEverySlides = 4
	if err := unity.EnableAdaptive(cfg); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		want := plain.Slide(b)
		wantFresh := append([]CriticalPoint(nil), want.Fresh...)
		wantDelta := append([]CriticalPoint(nil), want.Delta...)
		got := unity.Slide(b)
		comparePoints(t, i, "fresh", wantFresh, got.Fresh)
		comparePoints(t, i, "delta", wantDelta, got.Delta)
	}
	plain.Close()
	unity.Close()
}

// TestAdaptiveConfigValidate exercises the rejection paths.
func TestAdaptiveConfigValidate(t *testing.T) {
	good := DefaultAdaptiveConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []AdaptiveConfig{
		{RMSEBudgetMeters: 0, EvalEverySlides: 1, SampleVessels: 1, SampleFixesPerVessel: 1},
		{RMSEBudgetMeters: 50, EvalEverySlides: 0, SampleVessels: 1, SampleFixesPerVessel: 1},
		{RMSEBudgetMeters: 50, EvalEverySlides: 1, SampleVessels: 0, SampleFixesPerVessel: 1},
		{RMSEBudgetMeters: 50, EvalEverySlides: 1, SampleVessels: 1, SampleFixesPerVessel: 0},
		{RMSEBudgetMeters: 50, EvalEverySlides: 1, SampleVessels: 1, SampleFixesPerVessel: 1,
			Multipliers: []float64{2, -1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
		tier := NewSharded(DefaultParams(), stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}, 1)
		if err := tier.EnableAdaptive(cfg); err == nil {
			t.Errorf("config %d: EnableAdaptive accepted invalid config", i)
		}
		tier.Close()
	}
}
