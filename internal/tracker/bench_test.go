package tracker

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/fleetsim"
	"repro/internal/stream"
)

// benchWorkload is the benchmark fleet: the same shape as the BENCH
// artifact's baseline workload (seed 42, 400 vessels, 2 h, 5 min slides).
func benchWorkload(b *testing.B) (rows []stream.Batch, cols []stream.Batch, fixes int) {
	b.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Seed = 42
	cfg.Vessels = 400
	cfg.Duration = 2 * time.Hour
	all := fleetsim.NewSimulator(cfg).Run()
	batcher := stream.NewBatcher(stream.NewSliceSource(all), 5*time.Minute)
	for {
		bt, ok := batcher.Next()
		if !ok {
			break
		}
		rows = append(rows, bt)
		fb := &ais.FixBatch{}
		for _, f := range bt.Fixes {
			fb.Append(f)
		}
		cols = append(cols, stream.Batch{Cols: fb, Query: bt.Query})
	}
	return rows, cols, len(all)
}

func benchSlide(b *testing.B, batches []stream.Batch, fixes, shards int) {
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	params := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewSharded(params, window, shards)
		for _, bt := range batches {
			tr.Slide(bt)
		}
		tr.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*fixes), "ns/fix")
	b.ReportMetric(float64(b.N*fixes)/b.Elapsed().Seconds(), "fixes/s")
}

// BenchmarkShardedSlide replays the baseline workload through the
// tracking tier, row-oriented versus columnar, at 1 and 4 shards.
func BenchmarkShardedSlide(b *testing.B) {
	rows, cols, fixes := benchWorkload(b)
	b.Run("row-1shard", func(b *testing.B) { benchSlide(b, rows, fixes, 1) })
	b.Run("columnar-1shard", func(b *testing.B) { benchSlide(b, cols, fixes, 1) })
	b.Run("row-4shard", func(b *testing.B) { benchSlide(b, rows, fixes, 4) })
	b.Run("columnar-4shard", func(b *testing.B) { benchSlide(b, cols, fixes, 4) })
}

// shiftBatches advances every columnar batch (and its query time) by d,
// in place, so the same workload can be replayed against a warm tracker
// as the next stretch of stream time.
func shiftBatches(batches []stream.Batch, d time.Duration) {
	for i := range batches {
		batches[i].Query = batches[i].Query.Add(d)
		for j, ns := range batches[i].Cols.TimeNS {
			batches[i].Cols.TimeNS[j] = ns + int64(d)
		}
	}
}

// BenchmarkSteadySlide measures the steady state the long-running
// deployment sits in: one warm tracking tier, vessels and window
// populated, replaying the workload as consecutive stretches of stream
// time. One op is one full 2 h replay (24 slides). Cold-start costs —
// vessel-map growth, per-vessel state allocation, slice warm-up — are
// excluded, which is exactly what distinguishes this row from
// BenchmarkShardedSlide.
func BenchmarkSteadySlide(b *testing.B) {
	_, cols, fixes := benchWorkload(b)
	span := 2 * time.Hour
	tr := NewSharded(DefaultParams(), stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}, 1)
	defer tr.Close()
	// Warm up: one full pass populates the fleet and fills the window.
	for _, bt := range cols {
		tr.Slide(bt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shiftBatches(cols, span)
		for _, bt := range cols {
			tr.Slide(bt)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*fixes), "ns/fix")
	b.ReportMetric(float64(b.N*fixes)/b.Elapsed().Seconds(), "fixes/s")
}
