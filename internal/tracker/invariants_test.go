package tracker

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/fleetsim"
	"repro/internal/stream"
)

// simFixes builds a small realistic stream once for the invariant tests.
func simFixes(tb testing.TB) []ais.Fix {
	tb.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = 60
	cfg.Duration = 3 * time.Hour
	return fleetsim.NewSimulator(cfg).Run()
}

// collect runs the tracker over the fixes with the given window and
// returns all fresh critical points.
func collect(fixes []ais.Fix, window stream.WindowSpec) []CriticalPoint {
	tr := New(DefaultParams(), window)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), window.Slide)
	var out []CriticalPoint
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		out = append(out, tr.Slide(b).Fresh...)
	}
	return out
}

func TestInvariantDurativeEventsPairAndNest(t *testing.T) {
	points := collect(simFixes(t), stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute})
	type state struct{ stopped, slow, gap bool }
	states := make(map[uint32]*state)
	get := func(m uint32) *state {
		s := states[m]
		if s == nil {
			s = &state{}
			states[m] = s
		}
		return s
	}
	for _, cp := range points {
		s := get(cp.MMSI)
		switch cp.Type {
		case EventStopStart:
			if s.stopped {
				t.Fatalf("vessel %d: nested stopStart", cp.MMSI)
			}
			s.stopped = true
		case EventStopEnd:
			if !s.stopped {
				t.Fatalf("vessel %d: stopEnd without stopStart", cp.MMSI)
			}
			s.stopped = false
			if cp.Duration <= 0 {
				t.Fatalf("vessel %d: stop with non-positive duration", cp.MMSI)
			}
		case EventSlowStart:
			if s.slow {
				t.Fatalf("vessel %d: nested slowStart", cp.MMSI)
			}
			s.slow = true
		case EventSlowEnd:
			if !s.slow {
				t.Fatalf("vessel %d: slowEnd without slowStart", cp.MMSI)
			}
			s.slow = false
		case EventGapStart:
			if s.gap {
				t.Fatalf("vessel %d: nested gapStart", cp.MMSI)
			}
			s.gap = true
			// A gap interrupts any open durative run.
			if s.stopped || s.slow {
				t.Fatalf("vessel %d: gap started inside an open stop/slow episode", cp.MMSI)
			}
		case EventGapEnd:
			if !s.gap {
				t.Fatalf("vessel %d: gapEnd without gapStart", cp.MMSI)
			}
			s.gap = false
		}
	}
}

func TestInvariantPerVesselChronology(t *testing.T) {
	points := collect(simFixes(t), stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute})
	last := make(map[uint32]time.Time)
	for _, cp := range points {
		if prev, ok := last[cp.MMSI]; ok && cp.Time.Before(prev) {
			t.Fatalf("vessel %d: critical point at %v emitted after one at %v",
				cp.MMSI, cp.Time, prev)
		}
		last[cp.MMSI] = cp.Time
	}
}

func TestInvariantCriticalPointsWithinStreamExtent(t *testing.T) {
	fixes := simFixes(t)
	points := collect(fixes, stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute})
	lo, hi := fixes[0].Time, fixes[len(fixes)-1].Time
	for _, cp := range points {
		if cp.Time.Before(lo) || cp.Time.After(hi) {
			t.Fatalf("critical point outside stream extent: %v", cp)
		}
	}
}

// TestInvariantSlideGranularityIndependence: the motion-derived events
// (everything except gaps, whose detection is tied to slide boundaries)
// must not depend on how the stream is chopped into slides.
func TestInvariantSlideGranularityIndependence(t *testing.T) {
	fixes := simFixes(t)
	motionKey := func(points []CriticalPoint) map[string]int {
		out := make(map[string]int)
		for _, cp := range points {
			switch cp.Type {
			case EventGapStart, EventGapEnd:
				continue // slide-time detection differs by construction
			}
			out[fmt.Sprintf("%d/%s/%d", cp.MMSI, cp.Type, cp.Time.Unix())]++
		}
		return out
	}
	a := motionKey(collect(fixes, stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}))
	b := motionKey(collect(fixes, stream.WindowSpec{Range: time.Hour, Slide: 30 * time.Minute}))
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("event %s: count %d at β=5m but %d at β=30m", k, n, b[k])
		}
	}
	for k, n := range b {
		if a[k] != n {
			t.Fatalf("event %s: count %d at β=30m but %d at β=5m", k, n, a[k])
		}
	}
}

// TestInvariantDeltaConservation: every emitted critical point must
// eventually expire into the delta stream, exactly once, when the
// stream ends and the window drains.
func TestInvariantDeltaConservation(t *testing.T) {
	fixes := simFixes(t)
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	tr := New(DefaultParams(), window)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), window.Slide)
	fresh := make(map[string]int)
	delta := make(map[string]int)
	key := func(cp CriticalPoint) string {
		return fmt.Sprintf("%d/%s/%d/%v", cp.MMSI, cp.Type, cp.Time.Unix(), cp.Pos)
	}
	var lastQ time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		res := tr.Slide(b)
		for _, cp := range res.Fresh {
			fresh[key(cp)]++
		}
		for _, cp := range res.Delta {
			delta[key(cp)]++
		}
		lastQ = b.Query
	}
	// Drain: slide far past the end (gap detection will add a final
	// round of gap-start points, which also belong in the ledger).
	for i := 1; i <= 3; i++ {
		res := tr.Slide(stream.Batch{Query: lastQ.Add(time.Duration(i) * window.Range)})
		for _, cp := range res.Fresh {
			fresh[key(cp)]++
		}
		for _, cp := range res.Delta {
			delta[key(cp)]++
		}
	}
	if tr.VesselCount() != 0 {
		t.Fatalf("%d vessels still live after draining", tr.VesselCount())
	}
	for k, n := range fresh {
		if delta[k] != n {
			t.Fatalf("point %s: emitted %d times but expired %d times", k, n, delta[k])
		}
	}
	for k, n := range delta {
		if fresh[k] != n {
			t.Fatalf("point %s: expired %d times but emitted %d times", k, delta[k], n)
		}
	}
}
