// Package durable is the shared on-disk safety layer for every file the
// pipeline must be able to trust after a crash: a self-describing frame
// (magic header, format version, payload checksum) so that a truncated,
// corrupted or future-format file is rejected with a typed error instead
// of being half-decoded, and an atomic write protocol (temp file, fsync,
// rename, directory fsync) so that a file either exists completely or
// not at all. The MOD snapshot and the checkpoint subsystem both frame
// their payloads through this package.
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Typed failure shapes of ReadFrame. Callers branch with errors.Is; the
// returned errors additionally carry context (expected vs found).
var (
	// ErrBadMagic means the file does not start with the expected magic
	// header — it is not this kind of file at all.
	ErrBadMagic = errors.New("durable: bad magic header")
	// ErrTruncated means the file ends before the declared payload does:
	// an interrupted write that bypassed the atomic protocol.
	ErrTruncated = errors.New("durable: truncated frame")
	// ErrChecksum means the payload does not match its recorded CRC:
	// silent corruption, a torn write, or manual editing.
	ErrChecksum = errors.New("durable: payload checksum mismatch")
	// ErrFutureVersion means the frame was written by a newer format
	// revision than this binary understands.
	ErrFutureVersion = errors.New("durable: unsupported future format version")
)

// MagicLen is the fixed magic header length. Shorter magics are padded
// with NULs by WriteFrame, so readable tags like "MODSNAP" fit.
const MagicLen = 8

// HeaderLen is the full fixed frame-header size: magic, version
// (uint16 BE), payload length (uint64 BE), CRC-32C of the payload
// (uint32 BE). A frame on disk occupies HeaderLen + len(payload) bytes;
// multi-frame files (the alert log's segments) use it to track byte
// offsets without re-parsing.
const HeaderLen = MagicLen + 2 + 8 + 4

// frame layout after the magic: version, payload length, payload CRC.
const headerLen = HeaderLen

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// padMagic normalizes a tag to the fixed header width.
func padMagic(magic string) ([MagicLen]byte, error) {
	var m [MagicLen]byte
	if len(magic) == 0 || len(magic) > MagicLen {
		return m, fmt.Errorf("durable: magic %q must be 1..%d bytes", magic, MagicLen)
	}
	copy(m[:], magic)
	return m, nil
}

// WriteFrame writes one framed payload: magic, version, length, CRC,
// payload. The frame is self-checking but not self-syncing; one file
// holds one frame.
func WriteFrame(w io.Writer, magic string, version uint16, payload []byte) error {
	m, err := padMagic(magic)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerLen)
	copy(hdr, m[:])
	binary.BigEndian.PutUint16(hdr[MagicLen:], version)
	binary.BigEndian.PutUint64(hdr[MagicLen+2:], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[MagicLen+10:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("durable: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("durable: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads and verifies one frame written with WriteFrame,
// returning the payload and the format version it was written with.
// maxVersion is the newest revision the caller understands; frames
// beyond it fail with ErrFutureVersion before the payload is touched.
// Every failure shape maps to one of the typed errors above.
func ReadFrame(r io.Reader, magic string, maxVersion uint16) (payload []byte, version uint16, err error) {
	m, err := padMagic(magic)
	if err != nil {
		return nil, 0, err
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, fmt.Errorf("%w: file shorter than the frame header", ErrTruncated)
		}
		return nil, 0, fmt.Errorf("durable: reading frame header: %w", err)
	}
	if string(hdr[:MagicLen]) != string(m[:]) {
		return nil, 0, fmt.Errorf("%w: want %q", ErrBadMagic, magic)
	}
	version = binary.BigEndian.Uint16(hdr[MagicLen:])
	if version > maxVersion {
		return nil, version, fmt.Errorf("%w: frame version %d, this binary reads up to %d",
			ErrFutureVersion, version, maxVersion)
	}
	length := binary.BigEndian.Uint64(hdr[MagicLen+2:])
	want := binary.BigEndian.Uint32(hdr[MagicLen+10:])
	// Bound the allocation by what the reader can actually deliver: a
	// frame lying about its length fails as truncated, not as OOM.
	const maxPayload = 1 << 32
	if length > maxPayload {
		return nil, version, fmt.Errorf("%w: declared payload of %d bytes exceeds the format bound", ErrTruncated, length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, version, fmt.Errorf("%w: payload ends after fewer than the declared %d bytes", ErrTruncated, length)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, version, fmt.Errorf("%w: crc %08x, recorded %08x", ErrChecksum, got, want)
	}
	return payload, version, nil
}

// ScanFrames reads consecutive frames written with WriteFrame from r,
// calling fn with each verified payload; fn returning false stops the
// scan after that frame. It returns the byte offset just past the last
// fully verified frame, the number of frames consumed, and the terminal
// condition: nil when the stream ends cleanly on a frame boundary (or
// fn stopped it), and the typed frame error otherwise — ErrTruncated
// for a torn tail, ErrChecksum for a corrupted one.
//
// This is the recovery primitive for multi-frame append-only files: a
// crash mid-append leaves a torn or checksum-failing final frame, and
// truncating the file back to the returned offset recovers every frame
// written before it.
func ScanFrames(r io.Reader, magic string, maxVersion uint16, fn func(payload []byte, version uint16) bool) (valid int64, frames int, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		// A clean end of input lands exactly on a frame boundary; any
		// bytes past it that do not form a whole valid frame are the
		// torn tail.
		if _, err := br.Peek(1); err == io.EOF {
			return valid, frames, nil
		}
		payload, version, err := ReadFrame(br, magic, maxVersion)
		if err != nil {
			return valid, frames, err
		}
		valid += int64(HeaderLen + len(payload))
		frames++
		if !fn(payload, version) {
			return valid, frames, nil
		}
	}
}

// WriteFileAtomic writes a file so that path either holds the complete
// new contents or is untouched, across crashes at any instant: the data
// goes to a temp file in the same directory, is fsynced, renamed over
// path, and the directory itself is fsynced so the rename is durable.
// write receives the temp file's writer; any error it returns aborts
// the protocol and removes the temp file.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("durable: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		tmpName = ""
		return fmt.Errorf("durable: renaming into place: %w", err)
	}
	tmpName = "" // committed; nothing to clean up
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}
