package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func frameBytes(t *testing.T, magic string, version uint16, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, magic, version, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload bytes")
	raw := frameBytes(t, "TESTFRM", 3, payload)
	got, version, err := ReadFrame(bytes.NewReader(raw), "TESTFRM", 5)
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 {
		t.Errorf("version = %d, want 3", version)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round trip mismatch: %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	raw := frameBytes(t, "TESTFRM", 1, nil)
	got, _, err := ReadFrame(bytes.NewReader(raw), "TESTFRM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty payload decoded as %d bytes", len(got))
	}
}

func TestFrameRejectsWrongMagic(t *testing.T) {
	raw := frameBytes(t, "TESTFRM", 1, []byte("x"))
	_, _, err := ReadFrame(bytes.NewReader(raw), "OTHER", 1)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameRejectsFutureVersion(t *testing.T) {
	raw := frameBytes(t, "TESTFRM", 7, []byte("x"))
	_, version, err := ReadFrame(bytes.NewReader(raw), "TESTFRM", 6)
	if !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("err = %v, want ErrFutureVersion", err)
	}
	if version != 7 {
		t.Errorf("reported version = %d, want 7 so callers can log it", version)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	raw := frameBytes(t, "TESTFRM", 1, []byte("a longer payload to cut"))
	for _, cut := range []int{0, 3, MagicLen + 1, headerLen - 1, headerLen + 4, len(raw) - 1} {
		_, _, err := ReadFrame(bytes.NewReader(raw[:cut]), "TESTFRM", 1)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	raw := frameBytes(t, "TESTFRM", 1, []byte("payload under checksum"))
	for _, pos := range []int{headerLen, headerLen + 5, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		_, _, err := ReadFrame(bytes.NewReader(mut), "TESTFRM", 1)
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: err = %v, want ErrChecksum", pos, err)
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader([]byte("not a frame at all, just text")), "TESTFRM", 1)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestScanFramesMultiFrame(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four is longer")}
	for _, p := range payloads {
		buf.Write(frameBytes(t, "TESTFRM", 2, p))
	}
	var got [][]byte
	valid, frames, err := ScanFrames(bytes.NewReader(buf.Bytes()), "TESTFRM", 2,
		func(payload []byte, version uint16) bool {
			if version != 2 {
				t.Errorf("version = %d, want 2", version)
			}
			got = append(got, append([]byte(nil), payload...))
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if frames != len(payloads) {
		t.Errorf("frames = %d, want %d", frames, len(payloads))
	}
	if valid != int64(buf.Len()) {
		t.Errorf("valid = %d, want %d (whole stream)", valid, buf.Len())
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("frame %d payload = %q, want %q", i, got[i], p)
		}
	}
}

func TestScanFramesTornTailRecoversPriorFrames(t *testing.T) {
	var whole bytes.Buffer
	whole.Write(frameBytes(t, "TESTFRM", 1, []byte("first intact frame")))
	whole.Write(frameBytes(t, "TESTFRM", 1, []byte("second intact frame")))
	intact := whole.Len()
	whole.Write(frameBytes(t, "TESTFRM", 1, []byte("torn final frame")))
	// Cut the stream mid-final-frame at every possible point: the two
	// intact frames must always scan out, and valid must stop exactly at
	// their boundary so a recovery truncate keeps them whole.
	for cut := intact + 1; cut < whole.Len(); cut++ {
		var n int
		valid, frames, err := ScanFrames(bytes.NewReader(whole.Bytes()[:cut]), "TESTFRM", 1,
			func(payload []byte, _ uint16) bool { n++; return true })
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
		if frames != 2 || n != 2 {
			t.Fatalf("cut at %d: recovered %d frames, want 2", cut, frames)
		}
		if valid != int64(intact) {
			t.Fatalf("cut at %d: valid = %d, want %d", cut, valid, intact)
		}
	}
}

func TestScanFramesCorruptTail(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(frameBytes(t, "TESTFRM", 1, []byte("good frame")))
	intact := buf.Len()
	buf.Write(frameBytes(t, "TESTFRM", 1, []byte("corrupted frame")))
	raw := buf.Bytes()
	raw[len(raw)-3] ^= 0x55
	valid, frames, err := ScanFrames(bytes.NewReader(raw), "TESTFRM", 1,
		func([]byte, uint16) bool { return true })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if frames != 1 || valid != int64(intact) {
		t.Fatalf("frames=%d valid=%d, want 1/%d", frames, valid, intact)
	}
}

func TestScanFramesEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	first := frameBytes(t, "TESTFRM", 1, []byte("a"))
	buf.Write(first)
	buf.Write(frameBytes(t, "TESTFRM", 1, []byte("b")))
	valid, frames, err := ScanFrames(bytes.NewReader(buf.Bytes()), "TESTFRM", 1,
		func([]byte, uint16) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	// The stopped-at frame still counts as consumed: valid covers it, so
	// resumable scanners never reread a frame they already delivered.
	if frames != 1 || valid != int64(len(first)) {
		t.Fatalf("frames=%d valid=%d, want 1/%d", frames, valid, len(first))
	}
}

func TestScanFramesEmpty(t *testing.T) {
	valid, frames, err := ScanFrames(bytes.NewReader(nil), "TESTFRM", 1,
		func([]byte, uint16) bool { return true })
	if err != nil || valid != 0 || frames != 0 {
		t.Fatalf("empty scan: valid=%d frames=%d err=%v", valid, frames, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return WriteFrame(w, "TESTFRM", 1, []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the new contents replace the old completely.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return WriteFrame(w, "TESTFRM", 1, []byte("v2 longer"))
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload, _, err := ReadFrame(f, "TESTFRM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "v2 longer" {
		t.Errorf("payload = %q", payload)
	}
}

func TestWriteFileAtomicAbortLeavesOldContents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected crash mid-write")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Errorf("aborted write clobbered the file: %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after aborted write, want 1", len(entries))
	}
}
