package faults_test

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

// The supervision chaos suite: the pipeline runs with Config.SelfHeal
// under sustained fault injection and its surviving output must match
// the fault-free golden run apart from losses the health ledger
// accounts for. Run under -race via `make test-chaos`.

// chaosWorld materializes a deterministic fleet into slide batches plus
// the recognizer's static world.
func chaosWorld(t *testing.T, vessels, hours int, slide time.Duration) ([]stream.Batch, []maritime.Vessel, []maritime.Area, []mod.PortArea) {
	t.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	vs, areas, ports := core.AdaptWorld(sim)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), slide)
	var batches []stream.Batch
	for {
		b, ok := batcher.Next()
		if !ok {
			return batches, vs, areas, ports
		}
		batches = append(batches, b)
	}
}

// renderChaosSlide canonicalizes one slide's observable output for
// byte-exact comparison.
func renderChaosSlide(rep core.SlideReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q=%s fixes=%d cps=%d trips=%d alerts=[",
		rep.Query.UTC().Format(time.RFC3339), rep.FixesIn, rep.CriticalPoints, rep.TripsCompleted)
	alerts := make([]maritime.Alert, len(rep.Alerts))
	copy(alerts, rep.Alerts)
	sort.Slice(alerts, func(i, j int) bool { return maritime.CompareAlerts(alerts[i], alerts[j]) < 0 })
	for i, a := range alerts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(']')
	return b.String()
}

// TestChaosShardKill100Equivalence is the issue's headline guarantee:
// kill a tracker shard worker 100 times over a run and the surviving
// output must be byte-identical to the no-fault golden run, with every
// panic recovered in-slide (zero replay gaps to account for) and the
// process never exiting.
func TestChaosShardKill100Equivalence(t *testing.T) {
	const slide = 10 * time.Minute
	const kills = 100
	batches, vessels, areas, ports := chaosWorld(t, 150, 6, slide)
	if len(batches)*4 < kills {
		t.Fatalf("run too short: %d slides x 4 shards < %d kill sites", len(batches), kills)
	}
	cfg := core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: slide},
		Tracker:       tracker.DefaultParams(),
		TrackerShards: 4,
		Recognition:   maritime.Config{Window: time.Hour},
		Processors:    2,
		SelfHeal:      true,
	}

	golden := core.NewSystem(cfg, vessels, areas, ports)
	defer golden.Close()
	var want []string
	for _, b := range batches {
		want = append(want, renderChaosSlide(golden.ProcessBatch(b)))
	}

	sys := core.NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	var killed atomic.Int64
	sys.Tracker().SetFaultHook(func(shard, slideNo, attempt int) {
		// First-attempt kills only: the in-slide retry recovers each one
		// losslessly, so 100 deaths cost nothing but latency.
		if attempt == 0 && killed.Add(1) <= kills {
			panic(fmt.Sprintf("chaos: killing shard %d at slide %d", shard, slideNo))
		}
	})
	for i, b := range batches {
		got := renderChaosSlide(sys.ProcessBatch(b))
		if got != want[i] {
			t.Fatalf("slide %d diverges from golden under shard kills:\n  golden: %s\n  chaos:  %s", i, want[i], got)
		}
	}

	fs := sys.Tracker().FaultStats()
	if fs.Panics != kills || fs.Retries != kills {
		t.Errorf("fault stats: %+v, want Panics=Retries=%d", fs, kills)
	}
	if fs.Quarantined != 0 || fs.DroppedFixes != 0 || fs.GapSlides != 0 {
		t.Errorf("first-attempt kills must recover losslessly: %+v", fs)
	}
	h := sys.Health()
	if h.PanicsRecovered != kills {
		t.Errorf("Health.PanicsRecovered = %d, want %d", h.PanicsRecovered, kills)
	}
	if h.ReplayGapSlides != 0 {
		t.Errorf("ReplayGapSlides = %d, want 0 (nothing to account)", h.ReplayGapSlides)
	}
	if h.State() != "ok" {
		t.Errorf("final state %q, want ok", h.State())
	}
	if _, err := sys.Snapshot(); err != nil {
		t.Errorf("Snapshot after 100 recovered kills: %v", err)
	}
}

// TestChaosShardQuarantineSupervisorRestores escalates past the
// in-slide retry: one shard dies on the retry too, so the tier must
// quarantine it (its fixes dropped and accounted), the supervisor must
// restore it by journal replay, and once the window range has flushed
// the transient the per-slide output must re-converge with golden.
func TestChaosShardQuarantineSupervisorRestores(t *testing.T) {
	const slide = 10 * time.Minute
	batches, vessels, areas, ports := chaosWorld(t, 150, 6, slide)
	cfg := core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: slide},
		Tracker:       tracker.DefaultParams(),
		TrackerShards: 4,
		Recognition:   maritime.Config{Window: time.Hour},
		Processors:    2,
		SelfHeal:      true,
	}
	// The shard dies on both attempts of one slide a third into the run.
	killSlide := len(batches) / 3
	const killShard = 2

	golden := core.NewSystem(cfg, vessels, areas, ports)
	defer golden.Close()
	var want []string
	for _, b := range batches {
		want = append(want, renderChaosSlide(golden.ProcessBatch(b)))
	}

	sys := core.NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	var slideNo atomic.Int64
	sys.Tracker().SetFaultHook(func(shard, _, _ int) {
		if shard == killShard && int(slideNo.Load()) == killSlide {
			panic("chaos: shard dies on every attempt")
		}
	})
	sup := supervise.New(sys, supervise.Policy{InitialBackoff: time.Millisecond})
	sys.OnSlideEnd(func(core.SlideReport) { sup.Poll() })

	// The supervisor polls at slide end, so the quarantine can be healed
	// before control returns here — observe it through the repair ledger.
	healedBy := -1
	for i, b := range batches {
		slideNo.Store(int64(i))
		got := renderChaosSlide(sys.ProcessBatch(b))
		q := len(sys.Quarantined()) > 0
		if healedBy < 0 && i >= killSlide && !q && sys.Tracker().FaultStats().Repairs > 0 {
			healedBy = i
		}
		if i < killSlide && got != want[i] {
			t.Fatalf("pre-fault slide %d diverges:\n  golden: %s\n  chaos:  %s", i, want[i], got)
		}
		// One window range after the repair every transient has flushed:
		// tracker state replayed back to golden, recognizer window rolled
		// past the quarantine's lost events.
		flush := int(cfg.Window.Range/slide) + 1
		if healedBy >= 0 && i > healedBy+flush && got != want[i] {
			t.Fatalf("slide %d (repaired at %d) still diverges:\n  golden: %s\n  chaos:  %s", i, healedBy, want[i], got)
		}
	}
	if healedBy < 0 {
		t.Fatal("supervisor never restored the quarantined shard")
	}

	fs := sys.Tracker().FaultStats()
	if fs.Quarantined != 0 || fs.Repairs == 0 {
		t.Errorf("shard not restored: %+v", fs)
	}
	if st := sup.Stats(); st.Repairs == 0 || st.GiveUps != 0 {
		t.Errorf("supervisor stats: %+v, want at least one repair and no give-ups", st)
	}
	h := sys.Health()
	if h.DropsByCause["shard-down"] == 0 {
		t.Error("quarantine window's dropped fixes must be accounted under shard-down")
	}
	if h.State() != "ok" {
		t.Errorf("final state %q, want ok after restoration (health: %s)", h.State(), h.String())
	}
	if _, err := sys.Snapshot(); err != nil {
		t.Errorf("Snapshot after restoration: %v", err)
	}
}

// TestChaosLoadSpikeDegradationLadder drives a scripted ingest-backlog
// spike through the ladder: the pipeline must climb one rung per slide
// to shedding, ride out the spike degraded instead of falling behind,
// climb back down when the backlog clears, and export every transition
// via /metrics.
func TestChaosLoadSpikeDegradationLadder(t *testing.T) {
	const slide = 10 * time.Minute
	batches, vessels, areas, ports := chaosWorld(t, 150, 6, slide)
	if len(batches) < 20 {
		t.Fatalf("run too short for a spike window: %d slides", len(batches))
	}
	spikeFrom, spikeTo := 6, 12 // backlog high on slides [6, 12)

	var depth atomic.Int64
	cfg := core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: slide},
		Tracker:       tracker.DefaultParams(),
		TrackerShards: 2,
		Recognition:   maritime.Config{Window: time.Hour},
		Processors:    2,
		SelfHeal:      true,
		Degrade: &core.DegradeSpec{
			SlideHigh:  time.Hour, // latency never votes in this test
			DepthHigh:  1000,
			DepthFunc:  func() int { return int(depth.Load()) },
			EnterAfter: 1,
			ExitAfter:  1,
		},
	}
	sys := core.NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	reg := obs.NewRegistry()
	sys.RegisterMetrics(reg)

	var levels []int
	for i, b := range batches {
		if i >= spikeFrom && i < spikeTo {
			depth.Store(5000)
		} else {
			depth.Store(0)
		}
		sys.ProcessBatch(b)
		levels = append(levels, sys.DegradationLevel())
	}

	// The ladder climbs one rung per spiking slide and descends one rung
	// per healthy slide — never jumping, never sticking.
	wantAt := func(i int) int {
		switch {
		case i < spikeFrom:
			return 0
		case i < spikeTo:
			return min(i-spikeFrom+1, core.DegradeShedStationary)
		default:
			return max(core.DegradeShedStationary-(i-spikeTo+1), 0)
		}
	}
	for i, lv := range levels {
		if lv != wantAt(i) {
			t.Fatalf("slide %d: degradation level %d, want %d (levels: %v)", i, lv, wantAt(i), levels)
		}
	}
	h := sys.Health()
	if h.DegradationLevel != 0 {
		t.Errorf("ladder did not climb back down: level %d", h.DegradationLevel)
	}
	wantTransitions := 2 * core.DegradeShedStationary // three rungs up, three down
	if h.DegradationTransitions != wantTransitions {
		t.Errorf("DegradationTransitions = %d, want %d", h.DegradationTransitions, wantTransitions)
	}

	// The excursion is visible on /metrics.
	var buf strings.Builder
	reg.WriteText(&buf)
	text := buf.String()
	if !strings.Contains(text, "maritime_degradation_level 0") {
		t.Errorf("/metrics should export the (recovered) degradation level gauge:\n%s", grepMetric(text, "maritime_degradation"))
	}
	if !strings.Contains(text, fmt.Sprintf("maritime_degradation_transitions_total %d", wantTransitions)) {
		t.Errorf("/metrics should export %d ladder transitions:\n%s", wantTransitions, grepMetric(text, "maritime_degradation"))
	}
}

// grepMetric extracts the lines of one metric family for error output.
func grepMetric(text, prefix string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, prefix) || strings.HasPrefix(ln, "# ") && strings.Contains(ln, prefix) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
