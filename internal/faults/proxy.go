// Package faults provides a deterministic fault-injection TCP proxy for
// the live AIS feed: the wire-level analogue of stream.Delayer. The
// paper stresses that AIS data "is not noise-free; messages may be
// delayed, intermittent, or conflicting" (§2); faults.Proxy reproduces
// the transport half of that statement — connection resets, mid-line
// truncation, byte corruption, duplication, stalls and reordering — so
// chaos tests and live drivers can exercise the pipeline's degradation
// guards against a seeded, replayable fault schedule.
package faults

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// Plan is the deterministic fault schedule of a Proxy. All line counts
// refer to upstream (server→client) lines; the client→server direction
// (the resume handshake) is relayed verbatim. Given the same upstream
// byte stream and the same Plan, the injected faults are identical.
type Plan struct {
	// Seed drives the random choices that remain (e.g. which byte of a
	// line to corrupt); 0 is a valid fixed seed.
	Seed int64
	// ResetAfterLines severs the i-th accepted connection with a TCP RST
	// after that many upstream lines; connections beyond the slice (or
	// entries < 0) run clean.
	ResetAfterLines []int
	// TruncateOnReset delivers the first half of the line in flight
	// before the RST, so the client observes a mid-line cut.
	TruncateOnReset bool
	// CorruptEvery XORs one payload byte of every Nth line (0 = off).
	CorruptEvery int
	// DuplicateEvery sends every Nth line twice (0 = off).
	DuplicateEvery int
	// ReorderEvery holds every Nth line back one position, swapping it
	// with its successor (0 = off).
	ReorderEvery int
	// StallEvery pauses the stream for StallFor before every Nth line
	// (0 = off), simulating an intermittent link.
	StallEvery int
	StallFor   time.Duration
}

// Stats counts the faults a Proxy actually injected.
type Stats struct {
	Connections     int
	Resets          int
	CorruptedLines  int
	DuplicatedLines int
	ReorderedLines  int
	TruncatedLines  int
	Stalls          int
}

// Proxy is a fault-injecting TCP relay between a feed server and its
// clients. Zero value plus Upstream is ready to serve.
type Proxy struct {
	// Upstream is the real feed server's address.
	Upstream string
	Plan     Plan
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	stats     Stats
	corrupted []string
	truncated []string
	conns     int
}

// Serve accepts and relays connections until ctx is cancelled.
func (p *Proxy) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("faults: accept: %w", err)
		}
		p.mu.Lock()
		idx := p.conns
		p.conns++
		p.stats.Connections++
		p.mu.Unlock()
		p.logf("connection %d accepted from %s", idx, conn.RemoteAddr())
		go p.handle(ctx, conn, idx)
	}
}

// ListenAndServe binds addr and serves until ctx is cancelled,
// reporting the bound address through addrCh (buffered, length 1).
func (p *Proxy) ListenAndServe(ctx context.Context, addr string, addrCh chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("faults: listen: %w", err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr()
	}
	return p.Serve(ctx, ln)
}

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CorruptedLines returns the original, intact upstream lines whose
// delivered copies were corrupted — the fixes the proxy verifiably
// destroyed (a corrupted line fails the NMEA checksum downstream and is
// never resent, because the resume cursor moves past it).
func (p *Proxy) CorruptedLines() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.corrupted...)
}

// TruncatedLines returns the upstream lines cut mid-byte by a reset.
// Unlike corrupted lines these are usually recovered: a resuming client
// asks for replay from just before its last complete fix.
func (p *Proxy) TruncatedLines() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.truncated...)
}

// handle relays one client connection with faults applied.
func (p *Proxy) handle(ctx context.Context, client net.Conn, idx int) {
	defer client.Close()
	upstream, err := net.DialTimeout("tcp", p.Upstream, 10*time.Second)
	if err != nil {
		p.logf("connection %d: upstream dial: %v", idx, err)
		return
	}
	defer upstream.Close()
	// Relay the client→server direction (the resume handshake) verbatim.
	go io.Copy(upstream, client)

	rng := rand.New(rand.NewSource(p.Plan.Seed + int64(idx)*1009))
	resetAt := -1
	if idx < len(p.Plan.ResetAfterLines) {
		resetAt = p.Plan.ResetAfterLines[idx]
	}
	r := bufio.NewReader(upstream)
	lineNo := 0
	held := "" // a line delayed by reordering
	flushHeld := func() bool {
		if held == "" {
			return true
		}
		_, werr := io.WriteString(client, held)
		held = ""
		return werr == nil
	}
	for {
		if ctx.Err() != nil {
			return
		}
		line, rerr := r.ReadString('\n')
		if line != "" {
			lineNo++
			if resetAt >= 0 && lineNo > resetAt {
				flushHeld()
				p.reset(client, line)
				p.logf("connection %d: injected reset after %d lines", idx, resetAt)
				return
			}
			if p.Plan.StallEvery > 0 && lineNo%p.Plan.StallEvery == 0 && p.Plan.StallFor > 0 {
				p.count(func(s *Stats) { s.Stalls++ })
				time.Sleep(p.Plan.StallFor)
			}
			out := line
			if p.Plan.CorruptEvery > 0 && lineNo%p.Plan.CorruptEvery == 0 {
				out = corruptLine(line, rng)
				p.mu.Lock()
				p.stats.CorruptedLines++
				p.corrupted = append(p.corrupted, strings.TrimRight(line, "\n"))
				p.mu.Unlock()
			}
			if p.Plan.ReorderEvery > 0 && lineNo%p.Plan.ReorderEvery == 0 && held == "" && rerr == nil {
				// Hold this line; it goes out after its successor.
				held = out
				p.count(func(s *Stats) { s.ReorderedLines++ })
			} else {
				writes := []string{out}
				if p.Plan.DuplicateEvery > 0 && lineNo%p.Plan.DuplicateEvery == 0 {
					writes = append(writes, out)
					p.count(func(s *Stats) { s.DuplicatedLines++ })
				}
				for _, w := range writes {
					if _, werr := io.WriteString(client, w); werr != nil {
						return
					}
				}
				if !flushHeld() {
					return
				}
			}
		}
		if rerr != nil {
			flushHeld()
			if rerr != io.EOF {
				p.logf("connection %d: upstream: %v", idx, rerr)
			}
			return // defers close both sides; client sees a clean FIN
		}
	}
}

// reset severs the client connection with an RST, optionally delivering
// half of the in-flight line first.
func (p *Proxy) reset(client net.Conn, line string) {
	payload := strings.TrimRight(line, "\n")
	if p.Plan.TruncateOnReset && len(payload) > 2 {
		io.WriteString(client, payload[:len(payload)/2])
		p.mu.Lock()
		p.stats.TruncatedLines++
		p.truncated = append(p.truncated, payload)
		p.mu.Unlock()
	}
	p.count(func(s *Stats) { s.Resets++ })
	if tcp, ok := client.(*net.TCPConn); ok {
		tcp.SetLinger(0) // force RST so the client sees a transport error
	}
	client.Close()
}

// corruptLine XORs one byte of the NMEA payload (after the '!') so the
// checksum verifiably fails downstream; a line without a '!' gets an
// arbitrary byte hit instead.
func corruptLine(line string, rng *rand.Rand) string {
	n := len(line)
	if strings.HasSuffix(line, "\n") {
		n--
	}
	if n == 0 {
		return line
	}
	lo := 0
	if bang := strings.IndexByte(line, '!'); bang >= 0 && bang+1 < n {
		lo = bang + 1
	}
	i := lo + rng.Intn(n-lo)
	b := []byte(line)
	b[i] ^= 0x01
	return string(b)
}

func (p *Proxy) count(fn func(*Stats)) {
	p.mu.Lock()
	fn(&p.stats)
	p.mu.Unlock()
}

func (p *Proxy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}
