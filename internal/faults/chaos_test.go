package faults_test

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// fixKey identifies a fix at wire granularity (the NMEA line carries a
// whole-second timestamp).
type fixKey struct {
	mmsi uint32
	sec  int64
}

func keyOf(f ais.Fix) fixKey { return fixKey{mmsi: f.MMSI, sec: f.Time.Unix()} }

// recordingSource captures every fix that flows through it.
type recordingSource struct {
	inner stream.FixSource
	fixes []ais.Fix
}

func (r *recordingSource) Scan() bool {
	if r.inner.Scan() {
		r.fixes = append(r.fixes, r.inner.Fix())
		return true
	}
	return false
}
func (r *recordingSource) Fix() ais.Fix { return r.fixes[len(r.fixes)-1] }
func (r *recordingSource) Err() error   { return r.inner.Err() }

func chaosSystemConfig() core.Config {
	return core.Config{
		Window:     stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute},
		Tracker:    tracker.DefaultParams(),
		Processors: 2,
		Recognition: maritime.Config{
			Window: time.Hour,
		},
	}
}

func flattenAlerts(reports []core.SlideReport) []string {
	var out []string
	for _, r := range reports {
		for _, a := range r.Alerts {
			out = append(out, a.String())
		}
	}
	return out
}

// parseFeedLines decodes timestamped NMEA lines (as the feed server
// emits them) back into fixes.
func parseFeedLines(t *testing.T, lines []string) []ais.Fix {
	t.Helper()
	if len(lines) == 0 {
		return nil
	}
	sc := ais.NewScanner(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	var fixes []ais.Fix
	for sc.Scan() {
		fixes = append(fixes, sc.Fix())
	}
	if len(fixes) != len(lines) {
		t.Fatalf("parsed %d fixes from %d recorded fault lines", len(fixes), len(lines))
	}
	return fixes
}

// TestChaosEndToEnd replays a fleet-simulator stream through the fault
// proxy (seeded connection resets with mid-line truncation, plus
// periodic byte corruption) into a reconnecting client feeding the full
// surveillance pipeline, and checks the three fault-tolerance
// guarantees: exactly-once resume, alert equivalence modulo verifiably
// destroyed fixes, and complete loss accounting in Health.
func TestChaosEndToEnd(t *testing.T) {
	sim := fleetsim.NewSimulator(func() fleetsim.Config {
		cfg := fleetsim.DefaultConfig()
		cfg.Vessels = 120
		cfg.Duration = 3 * time.Hour
		return cfg
	}())
	fixes := sim.Run()
	if len(fixes) < 4000 {
		t.Fatalf("simulator produced only %d fixes; the fault plan needs a longer stream", len(fixes))
	}
	vessels, areas, ports := core.AdaptWorld(sim)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := &feed.Server{Fixes: fixes, Speedup: 0, HandshakeWait: 2 * time.Second}
	srvAddr := make(chan net.Addr, 1)
	go srv.ListenAndServe(ctx, "127.0.0.1:0", srvAddr)
	upstream := (<-srvAddr).String()

	policy := feed.DefaultRetryPolicy()
	policy.InitialBackoff = 5 * time.Millisecond
	policy.MaxBackoff = 50 * time.Millisecond
	policy.Seed = 11

	// Fault-free reference pass: same wire encoding, no proxy.
	cleanClient, err := feed.DialReconnecting(upstream, policy)
	if err != nil {
		t.Fatal(err)
	}
	cleanFixes, err := stream.Collect(cleanClient)
	cleanClient.Close()
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if len(cleanFixes) != len(fixes) {
		t.Fatalf("clean run delivered %d of %d fixes", len(cleanFixes), len(fixes))
	}

	// Chaos pass: two seeded resets (each truncating the line in
	// flight) and one corrupted line per 97.
	proxy := &faults.Proxy{
		Upstream: upstream,
		Plan: faults.Plan{
			Seed:            42,
			ResetAfterLines: []int{450, 1200},
			TruncateOnReset: true,
			CorruptEvery:    97,
		},
	}
	proxyAddr := make(chan net.Addr, 1)
	go proxy.ListenAndServe(ctx, "127.0.0.1:0", proxyAddr)

	client, err := feed.DialReconnecting((<-proxyAddr).String(), policy)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	buf := stream.NewIngestBuffer(client, len(fixes)+16)
	defer buf.Close()
	rec := &recordingSource{inner: buf}

	sys := core.NewSystem(chaosSystemConfig(), vessels, areas, ports)
	sys.AddHealthSource(core.LiveHealthSource(client, buf))
	reports := sys.RunAll(stream.NewBatcher(rec, 10*time.Minute))
	if err := rec.Err(); err != nil {
		t.Fatalf("chaos run ended with error: %v", err)
	}
	delivered := rec.fixes

	ns := client.NetStats()
	ps := proxy.Stats()
	if ps.Resets != 2 || ps.TruncatedLines != 2 {
		t.Fatalf("proxy stats = %+v, want 2 resets with 2 truncations", ps)
	}
	if ps.CorruptedLines == 0 {
		t.Fatal("the fault plan corrupted no lines")
	}
	// (a) The client reconnected once per reset and resumed each time.
	if ns.Reconnects != 2 || ns.Resumes != 2 {
		t.Errorf("net stats = %+v, want 2 reconnects / 2 resumes", ns)
	}
	if srv.Stats().Resumes != 2 {
		t.Errorf("server honored %d resumes, want 2", srv.Stats().Resumes)
	}
	if !client.Stats().Reconciles() {
		t.Errorf("scanner stats do not reconcile: %+v", client.Stats())
	}

	// (a) Exactly-once: the delivered stream must be an in-order
	// subsequence of the fault-free stream — no duplicates from the
	// resume replay, no reordering, nothing invented.
	j := 0
	var missing []ais.Fix
	for _, f := range cleanFixes {
		if j < len(delivered) && delivered[j].MMSI == f.MMSI &&
			delivered[j].Time.Equal(f.Time) && delivered[j].Pos == f.Pos {
			j++
			continue
		}
		missing = append(missing, f)
	}
	if j != len(delivered) {
		t.Fatalf("chaos run delivered %d fixes that are not an in-order subsequence of the clean run (duplicate or reordered delivery)",
			len(delivered)-j)
	}
	if len(missing) == 0 {
		t.Fatal("no fixes were lost: the fault plan did not bite")
	}

	// (b) Every missing fix maps to a line the proxy verifiably
	// destroyed (corrupted lines fail the NMEA checksum and are never
	// replayed, because the resume cursor has moved past them).
	destroyed := parseFeedLines(t, proxy.CorruptedLines())
	destCount := make(map[fixKey]int, len(destroyed))
	for _, f := range destroyed {
		destCount[keyOf(f)]++
	}
	for _, f := range missing {
		k := keyOf(f)
		if destCount[k] == 0 {
			t.Errorf("fix MMSI %d at %v lost without a destroying fault", f.MMSI, f.Time)
			continue
		}
		destCount[k]--
	}
	// Truncated lines are the recoverable kind: the resume replays
	// them, so their fixes must have arrived.
	delivCount := make(map[fixKey]int, len(delivered))
	for _, f := range delivered {
		delivCount[keyOf(f)]++
	}
	for _, f := range parseFeedLines(t, proxy.TruncatedLines()) {
		if delivCount[keyOf(f)] == 0 {
			t.Errorf("truncated fix MMSI %d at %v was not recovered by the resume", f.MMSI, f.Time)
		}
	}

	// (b) Alerts must match a fault-free run over the surviving fixes:
	// replay clean-minus-missing through an identically configured
	// system and compare alert-for-alert.
	missingCount := make(map[fixKey]int, len(missing))
	for _, f := range missing {
		missingCount[keyOf(f)]++
	}
	var survivors []ais.Fix
	for _, f := range cleanFixes {
		if k := keyOf(f); missingCount[k] > 0 {
			missingCount[k]--
			continue
		}
		survivors = append(survivors, f)
	}
	ref := core.NewSystem(chaosSystemConfig(), vessels, areas, ports)
	refReports := ref.RunAll(stream.NewBatcher(stream.NewSliceSource(survivors), 10*time.Minute))
	want, got := flattenAlerts(refReports), flattenAlerts(reports)
	if len(want) == 0 {
		t.Fatal("reference run raised no alerts; the comparison is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("chaos run raised %d alerts, reference run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alert %d diverged:\nchaos:     %s\nreference: %s", i, got[i], want[i])
		}
	}

	// (c) Health accounts every lost message: each of the missing fixes
	// was dropped by the Data Scanner (the corrupted line reached the
	// client and failed validation there), and nothing else was lost.
	h := sys.Health()
	if h.Reconnects != 2 || h.Resumes != 2 {
		t.Errorf("health transport counters = %+v, want 2/2", h)
	}
	if h.IngestOverflow != 0 {
		t.Errorf("ingest overflow = %d with ample capacity", h.IngestOverflow)
	}
	scannerDrops := client.Stats().Dropped()
	if scannerDrops != h.TotalDropped() {
		t.Errorf("health drops = %d, scanner counted %d", h.TotalDropped(), scannerDrops)
	}
	if scannerDrops < len(missing) {
		t.Errorf("scanner accounted %d drops for %d missing fixes: losses escaped the books",
			scannerDrops, len(missing))
	}
	// Every drop is attributable: corrupted lines plus the (at most
	// one per reset) truncated half-lines the scanner saw.
	if max := ps.CorruptedLines + ps.TruncatedLines; scannerDrops > max {
		t.Errorf("scanner dropped %d lines, but the proxy only injured %d", scannerDrops, max)
	}
	if last := reports[len(reports)-1].Health; last.Reconnects != 2 {
		t.Errorf("per-slide health snapshot lost the reconnect count: %+v", last)
	}
}
