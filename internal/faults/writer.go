package faults

import (
	"errors"
	"io"
)

// ErrInjectedCrash is the terminal error of a CrashWriter that reached
// its byte budget — the injected mid-write "power loss".
var ErrInjectedCrash = errors.New("faults: injected crash mid-write")

// CrashWriter passes bytes through until limit bytes have been written,
// then fails every further Write with ErrInjectedCrash. Wrapped around
// a checkpoint writer it simulates a process dying mid-checkpoint: the
// atomic write protocol must abort, leaving the previous checkpoint
// intact.
type CrashWriter struct {
	w       io.Writer
	limit   int64
	written int64
}

// NewCrashWriter wraps w, crashing after limit bytes. A limit of 0
// crashes on the first write.
func NewCrashWriter(w io.Writer, limit int64) *CrashWriter {
	return &CrashWriter{w: w, limit: limit}
}

// Write forwards p (possibly a prefix of it) until the limit is hit.
func (c *CrashWriter) Write(p []byte) (int, error) {
	if c.written >= c.limit {
		return 0, ErrInjectedCrash
	}
	if rem := c.limit - c.written; int64(len(p)) > rem {
		n, err := c.w.Write(p[:rem])
		c.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjectedCrash
	}
	n, err := c.w.Write(p)
	c.written += int64(n)
	return n, err
}

// Written returns the bytes let through so far.
func (c *CrashWriter) Written() int64 { return c.written }
