package faults

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
)

// startUpstream serves the given lines to every connection.
func startUpstream(t *testing.T, lines []string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for _, l := range lines {
					if _, err := io.WriteString(c, l+"\n"); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startProxy serves p on an ephemeral port until the test ends.
func startProxy(t *testing.T, p *Proxy) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- p.ListenAndServe(ctx, "127.0.0.1:0", addrCh) }()
	select {
	case addr := <-addrCh:
		t.Cleanup(func() {
			cancel()
			if err := <-errCh; err != nil {
				t.Errorf("proxy: %v", err)
			}
		})
		return addr.String()
	case err := <-errCh:
		t.Fatalf("proxy failed to start: %v", err)
		return ""
	}
}

func testLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d !AIVDM,1,1,,A,payload%04d,0*00", 1243814400+i, i)
	}
	return lines
}

// readAll drains a connection line-wise, returning complete lines, any
// trailing partial line, and the terminal error.
func readAll(conn net.Conn) (lines []string, partial string, err error) {
	r := bufio.NewReader(conn)
	for {
		s, rerr := r.ReadString('\n')
		if strings.HasSuffix(s, "\n") {
			lines = append(lines, strings.TrimRight(s, "\n"))
		} else if s != "" {
			partial = s
		}
		if rerr != nil {
			return lines, partial, rerr
		}
	}
}

func TestProxyPassthrough(t *testing.T) {
	want := testLines(50)
	p := &Proxy{Upstream: startUpstream(t, want), Logf: t.Logf}
	addr := startProxy(t, p)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, partial, rerr := readAll(conn)
	if rerr != io.EOF || partial != "" {
		t.Fatalf("clean relay ended with err=%v partial=%q", rerr, partial)
	}
	if len(got) != len(want) {
		t.Fatalf("relayed %d lines, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s := p.Stats(); s != (Stats{Connections: 1}) {
		t.Errorf("clean relay injected faults: %+v", s)
	}
}

func TestProxyCorruptionIsSeededAndRecorded(t *testing.T) {
	want := testLines(30)
	run := func() ([]string, []string) {
		p := &Proxy{
			Upstream: startUpstream(t, want),
			Plan:     Plan{Seed: 42, CorruptEvery: 7},
		}
		addr := startProxy(t, p)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		got, _, _ := readAll(conn)
		return got, p.CorruptedLines()
	}
	got1, rec1 := run()
	got2, rec2 := run()
	if len(got1) != len(want) {
		t.Fatalf("relayed %d lines, want %d", len(got1), len(want))
	}
	wantCorrupt := len(want) / 7
	corrupted := 0
	for i := range got1 {
		if got1[i] != want[i] {
			corrupted++
			if (i+1)%7 != 0 {
				t.Errorf("line %d corrupted, but only every 7th should be", i)
			}
			// Exactly one byte differs, and never the timestamp prefix.
			diffs := 0
			for j := range got1[i] {
				if got1[i][j] != want[i][j] {
					diffs++
					if j < strings.IndexByte(want[i], '!') {
						t.Errorf("line %d corrupted before the payload at byte %d", i, j)
					}
				}
			}
			if diffs != 1 {
				t.Errorf("line %d has %d corrupted bytes, want 1", i, diffs)
			}
		}
	}
	if corrupted != wantCorrupt {
		t.Errorf("corrupted %d lines, want %d", corrupted, wantCorrupt)
	}
	if len(rec1) != wantCorrupt {
		t.Errorf("recorded %d corrupted lines, want %d", len(rec1), wantCorrupt)
	}
	for i, l := range rec1 {
		if l != want[(i+1)*7-1] {
			t.Errorf("recorded line %d = %q, want the original %q", i, l, want[(i+1)*7-1])
		}
	}
	// Same seed, same upstream → byte-identical faults.
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("corruption is not deterministic at line %d", i)
		}
	}
	if len(rec1) != len(rec2) {
		t.Fatalf("fault records differ across identical runs")
	}
}

func TestProxyResetTruncatesMidLine(t *testing.T) {
	want := testLines(40)
	p := &Proxy{
		Upstream: startUpstream(t, want),
		Plan:     Plan{ResetAfterLines: []int{10}, TruncateOnReset: true},
		Logf:     t.Logf,
	}
	addr := startProxy(t, p)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, partial, rerr := readAll(conn)
	if rerr == nil || errors.Is(rerr, io.EOF) {
		t.Fatalf("reset surfaced as a clean end (err=%v); want a transport error", rerr)
	}
	if len(got) != 10 {
		t.Fatalf("received %d complete lines before the reset, want 10", len(got))
	}
	if partial == "" || !strings.HasPrefix(want[10], partial) {
		t.Errorf("truncated tail %q is not a prefix of line 11 %q", partial, want[10])
	}
	st := p.Stats()
	if st.Resets != 1 || st.TruncatedLines != 1 {
		t.Errorf("stats = %+v, want 1 reset / 1 truncation", st)
	}
	if tr := p.TruncatedLines(); len(tr) != 1 || tr[0] != want[10] {
		t.Errorf("TruncatedLines = %v, want the original line 11", tr)
	}
	// A second connection indexes the next plan entry: none → clean.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	got2, _, rerr2 := readAll(conn2)
	if rerr2 != io.EOF || len(got2) != len(want) {
		t.Errorf("second connection: %d lines, err %v; want clean full replay", len(got2), rerr2)
	}
}

func TestProxyDuplicationAndReordering(t *testing.T) {
	want := testLines(12)
	p := &Proxy{
		Upstream: startUpstream(t, want),
		Plan:     Plan{DuplicateEvery: 5, ReorderEvery: 4},
	}
	addr := startProxy(t, p)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, _, _ := readAll(conn)

	counts := make(map[string]int)
	for _, l := range got {
		counts[l]++
	}
	st := p.Stats()
	if st.DuplicatedLines == 0 || st.ReorderedLines == 0 {
		t.Fatalf("stats = %+v, want duplications and reorderings", st)
	}
	dups := 0
	for i, l := range want {
		n := counts[l]
		if n < 1 {
			t.Errorf("line %d lost by duplication/reordering: %q", i, l)
		}
		dups += n - 1
	}
	if dups != st.DuplicatedLines {
		t.Errorf("observed %d duplicates, stats say %d", dups, st.DuplicatedLines)
	}
	// Line 4 (index 3) is held back and must arrive after line 5.
	pos := func(l string) int {
		for i, g := range got {
			if g == l {
				return i
			}
		}
		return -1
	}
	if pos(want[3]) < pos(want[4]) {
		t.Errorf("line 4 was not reordered after line 5: positions %d vs %d", pos(want[3]), pos(want[4]))
	}
}
