package maritime

import (
	"sync"

	"repro/internal/geo"
	"repro/internal/rtec"
)

// FactGenerator precomputes spatial facts for the Figure 11(b) setting:
// for each movement event, it emits one fact per area of interest that
// the vessel is close to at the event's timestamp, so that recognition
// needs no spatial reasoning.
//
// The generator owns reusable scratch (the dedupe set, the output
// buffer, per-query candidate buffers), so repeated Facts calls on the
// pipeline hot path do not allocate. It is not safe for concurrent
// Facts calls.
type FactGenerator struct {
	areas       []*Area
	idx         *geo.AreaIndex
	closeMeters float64

	// Reused across calls: the per-slide dedupe set, the output slice
	// handed to the caller (valid until the next call), and the
	// proximity-candidate buffer.
	seen map[SpatialFact]bool
	out  []SpatialFact
	cand []int32

	// Parallel fan-out (SetParallelism): chunk workers append candidate
	// facts into per-chunk buffers; the dedupe pass stays serial.
	par    int
	chunks [][]SpatialFact
}

// factParallelMin is the event-slice size below which the parallel
// fan-out is not worth the goroutine handoff.
const factParallelMin = 512

// NewFactGenerator builds a generator over the given areas with the
// given close/3 threshold in meters.
func NewFactGenerator(areas []Area, closeMeters float64) *FactGenerator {
	g := &FactGenerator{closeMeters: closeMeters, seen: make(map[SpatialFact]bool)}
	polys := make([]*geo.Polygon, len(areas))
	for i := range areas {
		a := areas[i]
		g.areas = append(g.areas, &a)
		polys[i] = a.Poly
	}
	g.idx = geo.NewAreaIndex(polys, closeMeters, 0.25)
	return g
}

// SetParallelism fans the proximity probes of large event slices out
// across n goroutines (1 or less keeps the serial path). The output is
// identical to the serial path: candidate chunks are concatenated in
// event order before the order-preserving dedupe.
func (g *FactGenerator) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	g.par = n
}

// Facts returns the spatial facts accompanying the given movement
// events: one per distinct (vessel, timestamp, close area) triple.
// Co-timed MEs of the same vessel (e.g. slowStart and slowMotion from
// one critical point) share one fact, so fact-consuming rules fire
// exactly as often as the spatially-reasoning ones.
//
// The returned slice is generator-owned scratch, valid until the next
// Facts call; callers that retain it must copy. It is nil when no event
// is near any area.
func (g *FactGenerator) Facts(events []rtec.Event) []SpatialFact {
	if len(events) == 0 || g.idx.Len() == 0 {
		return nil
	}
	g.out = g.out[:0]
	if len(g.seen) > 0 {
		clear(g.seen)
	}
	if g.par > 1 && len(events) >= factParallelMin {
		g.factsParallel(events)
	} else {
		for _, ev := range events {
			g.out = g.appendFacts(g.out, ev, &g.cand)
		}
	}
	g.dedupe()
	if len(g.out) == 0 {
		return nil
	}
	return g.out
}

// appendFacts probes the area index for one event and appends one
// (possibly duplicate) fact per close area. cand is the reusable
// candidate buffer of the calling goroutine.
func (g *FactGenerator) appendFacts(dst []SpatialFact, ev rtec.Event, cand *[]int32) []SpatialFact {
	p := geo.Point{Lon: ev.Lon, Lat: ev.Lat}
	*cand = g.idx.CloseToAppend((*cand)[:0], p, g.closeMeters)
	for _, i := range *cand {
		dst = append(dst, SpatialFact{
			Vessel: ev.Entity,
			AreaID: g.areas[i].ID,
			Time:   ev.Time,
		})
	}
	return dst
}

// factsParallel splits the events into contiguous chunks, probes each
// chunk on its own goroutine, then concatenates the chunk outputs in
// event order into g.out. Probing dominates (polygon distance tests);
// the index is read-only, so workers share it freely.
func (g *FactGenerator) factsParallel(events []rtec.Event) {
	n := g.par
	if len(g.chunks) < n {
		g.chunks = append(g.chunks, make([][]SpatialFact, n-len(g.chunks))...)
	}
	per := (len(events) + n - 1) / n
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		lo := c * per
		if lo >= len(events) {
			g.chunks[c] = g.chunks[c][:0]
			continue
		}
		hi := lo + per
		if hi > len(events) {
			hi = len(events)
		}
		wg.Add(1)
		go func(c int, part []rtec.Event) {
			defer wg.Done()
			buf := g.chunks[c][:0]
			var cand []int32
			for _, ev := range part {
				buf = g.appendFacts(buf, ev, &cand)
			}
			g.chunks[c] = buf
		}(c, events[lo:hi])
	}
	wg.Wait()
	for c := 0; c < n; c++ {
		g.out = append(g.out, g.chunks[c]...)
	}
}

// dedupe removes duplicate facts from g.out in place, preserving first
// occurrence order, using the reusable seen set.
func (g *FactGenerator) dedupe() {
	kept := g.out[:0]
	for _, f := range g.out {
		if g.seen[f] {
			continue
		}
		g.seen[f] = true
		kept = append(kept, f)
	}
	g.out = kept
}
