package maritime

import (
	"repro/internal/geo"
	"repro/internal/rtec"
)

// FactGenerator precomputes spatial facts for the Figure 11(b) setting:
// for each movement event, it emits one fact per area of interest that
// the vessel is close to at the event's timestamp, so that recognition
// needs no spatial reasoning.
type FactGenerator struct {
	areas       []*Area
	idx         *geo.AreaIndex
	closeMeters float64
}

// NewFactGenerator builds a generator over the given areas with the
// given close/3 threshold in meters.
func NewFactGenerator(areas []Area, closeMeters float64) *FactGenerator {
	g := &FactGenerator{closeMeters: closeMeters}
	polys := make([]*geo.Polygon, len(areas))
	for i := range areas {
		a := areas[i]
		g.areas = append(g.areas, &a)
		polys[i] = a.Poly
	}
	g.idx = geo.NewAreaIndex(polys, closeMeters, 0.25)
	return g
}

// Facts returns the spatial facts accompanying the given movement
// events: one per distinct (vessel, timestamp, close area) triple.
// Co-timed MEs of the same vessel (e.g. slowStart and slowMotion from
// one critical point) share one fact, so fact-consuming rules fire
// exactly as often as the spatially-reasoning ones.
func (g *FactGenerator) Facts(events []rtec.Event) []SpatialFact {
	var out []SpatialFact
	seen := make(map[SpatialFact]bool)
	for _, ev := range events {
		p := geo.Point{Lon: ev.Lon, Lat: ev.Lat}
		for _, i := range g.idx.CloseTo(p, g.closeMeters) {
			f := SpatialFact{
				Vessel: ev.Entity,
				AreaID: g.areas[i].ID,
				Time:   ev.Time,
			}
			if seen[f] {
				continue
			}
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
