package maritime

import (
	"slices"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/rtec"
)

// Mode selects how spatial relations between vessels and areas are
// obtained during recognition (the paper's Figure 11(a) vs 11(b)).
type Mode int

const (
	// SpatialOnDemand computes close/3 with Haversine geometry inside the
	// CE rules (Figure 11(a)).
	SpatialOnDemand Mode = iota
	// SpatialFacts consumes precomputed proximity facts accompanying the
	// ME stream instead of reasoning spatially (Figure 11(b)).
	SpatialFacts
)

// Config parameterizes a Recognizer.
type Config struct {
	// Window is the RTEC working-memory range ω.
	Window time.Duration
	// CloseMeters is the close/3 proximity threshold (default 3000 m).
	CloseMeters float64
	// Mode selects on-demand spatial reasoning or precomputed facts.
	Mode Mode
	// SuspiciousMin is the vessel count above which an area becomes
	// suspicious; the paper's domain experts set it so that "at least
	// four vessels" must have stopped (N > 3).
	SuspiciousMin int
	// DisableGridIndex forces linear scans over all areas in close/3;
	// exposed for the ablation benchmark.
	DisableGridIndex bool
	// ProbThreshold > 0 enables probabilistic recognition of the
	// durative CEs (Prob-EC semantics over ME detection confidences): a
	// CE holds while its belief is at least this threshold. Zero keeps
	// recognition crisp.
	ProbThreshold float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.CloseMeters <= 0 {
		c.CloseMeters = 3000
	}
	if c.SuspiciousMin <= 0 {
		c.SuspiciousMin = 4
	}
	return c
}

// Recognizer wires the paper's four complex event definitions into an
// RTEC engine over the given static world knowledge.
type Recognizer struct {
	cfg     Config
	engine  *rtec.Engine
	vessels map[string]Vessel
	areas   []*Area
	byID    map[string]*Area
	idx     *geo.AreaIndex
	idxList []*Area // same order as the index's polygons

	// facts retains the spatial facts whose timestamps are still within
	// the working memory (they accompany MEs and share their window
	// semantics); factIdx indexes them per advance:
	// vessel entity → ME timestamp → area IDs close to the vessel then.
	facts   []SpatialFact
	factIdx map[string]map[rtec.Timepoint][]string

	// seen dedupes user-facing alerts: with β < ω the same CE occurrence
	// is re-derived by every overlapping window instantiation.
	seen   map[Alert]bool
	alerts []Alert
	// restoredAlerts carries the alert count of a restored checkpoint, so
	// CECount stays cumulative across a crash/restore cycle.
	restoredAlerts int
}

// SpatialFact states that a vessel was close to an area at the
// timestamp of one of its MEs (the paper's Figure 11(b) input: "each ME
// ... is accompanied by facts stating whether the vessel is 'close' to
// some area of interest — the timestamp of these facts is the same as
// the timestamp of the ME").
type SpatialFact struct {
	Vessel string
	AreaID string
	Time   rtec.Timepoint
}

// NewRecognizer builds the recognition run-time. vessels supplies the
// static registry; areas supplies every area of interest including the
// watch areas for the suspicious CE.
func NewRecognizer(cfg Config, vessels []Vessel, areas []Area) *Recognizer {
	cfg = cfg.withDefaults()
	r := &Recognizer{
		cfg:     cfg,
		engine:  rtec.NewEngine(int64(cfg.Window / time.Second)),
		vessels: make(map[string]Vessel, len(vessels)),
		byID:    make(map[string]*Area, len(areas)),
		seen:    make(map[Alert]bool),
	}
	for _, v := range vessels {
		r.vessels[v.Entity()] = v
	}
	for i := range areas {
		a := areas[i]
		r.areas = append(r.areas, &a)
		r.byID[a.ID] = r.areas[len(r.areas)-1]
	}
	if !cfg.DisableGridIndex {
		polys := make([]*geo.Polygon, len(r.areas))
		for i, a := range r.areas {
			polys[i] = a.Poly
		}
		r.idx = geo.NewAreaIndex(polys, cfg.CloseMeters, 0.25)
		r.idxList = r.areas
	}
	r.install()
	return r
}

// Engine exposes the underlying RTEC engine (for interval queries).
func (r *Recognizer) Engine() *rtec.Engine { return r.engine }

// closeAreas implements close/3: the areas within CloseMeters of p,
// optionally filtered by kind (pass -1 for any kind).
func (r *Recognizer) closeAreas(p geo.Point, kind AreaKind) []*Area {
	var out []*Area
	if r.idx != nil {
		for _, i := range r.idx.CloseTo(p, r.cfg.CloseMeters) {
			a := r.idxList[i]
			if kind < 0 || a.Kind == kind {
				out = append(out, a)
			}
		}
		return out
	}
	for _, a := range r.areas {
		if kind >= 0 && a.Kind != kind {
			continue
		}
		if a.Poly.DistanceMeters(p) <= r.cfg.CloseMeters {
			out = append(out, a)
		}
	}
	return out
}

// proximity resolves the areas of the given kind close to the vessel at
// the event's position and time, honoring the configured mode.
func (r *Recognizer) proximity(ev rtec.Event, kind AreaKind) []string {
	if r.cfg.Mode == SpatialFacts {
		var out []string
		for _, id := range r.factIdx[ev.Entity][ev.Time] {
			if a := r.byID[id]; a != nil && (kind < 0 || a.Kind == kind) {
				out = append(out, id)
			}
		}
		return out
	}
	areas := r.closeAreas(geo.Point{Lon: ev.Lon, Lat: ev.Lat}, kind)
	out := make([]string, len(areas))
	for i, a := range areas {
		out[i] = a.ID
	}
	return out
}

// vessel returns the static record for an entity; unknown vessels get a
// zero record (not fishing, zero draft), as with vessels missing from
// the paper's database.
func (r *Recognizer) vessel(entity string) Vessel {
	v, ok := r.vessels[entity]
	if !ok {
		mmsi, _ := strconv.ParseUint(entity, 10, 32)
		return Vessel{MMSI: uint32(mmsi)}
	}
	return v
}

// lastPositionedEvent returns the latest window event among names for
// the entity at or before t, to locate a vessel when a durative fluent
// holds. ok is false when no such event exists in the window.
func lastPositionedEvent(ctx *rtec.Ctx, entity string, t rtec.Timepoint, names ...string) (rtec.Event, bool) {
	var best rtec.Event
	found := false
	for _, name := range names {
		for _, ev := range ctx.EventsNamed(name) {
			if ev.Entity != entity || ev.Time > t {
				continue
			}
			if !found || ev.Time > best.Time {
				best = ev
				found = true
			}
		}
	}
	return best, found
}

// stoppedNear counts the vessels stopped close to the area at time t —
// the paper's vesselsStoppedIn(Area) fluent.
func (r *Recognizer) stoppedNear(ctx *rtec.Ctx, areaID string, t rtec.Timepoint) int {
	n := 0
	for _, entity := range ctx.EntitiesHolding("stopped", rtec.True, t) {
		ev, ok := lastPositionedEvent(ctx, entity, t, MEStopStart)
		if !ok {
			continue
		}
		for _, id := range r.proximity(ev, KindWatch) {
			if id == areaID {
				n++
				break
			}
		}
	}
	return n
}

// fishingActivityNear counts fishing vessels whose stop or slow-motion
// episode holds at t close to the forbidden-fishing area.
func (r *Recognizer) fishingActivityNear(ctx *rtec.Ctx, areaID string, t rtec.Timepoint) int {
	n := 0
	for _, fluent := range [2]string{"stopped", "lowSpeed"} {
		startME := MEStopStart
		if fluent == "lowSpeed" {
			startME = MESlowStart
		}
		for _, entity := range ctx.EntitiesHolding(fluent, rtec.True, t) {
			if !r.vessel(entity).Fishing {
				continue
			}
			ev, ok := lastPositionedEvent(ctx, entity, t, startME)
			if !ok {
				continue
			}
			for _, id := range r.proximity(ev, KindForbiddenFishing) {
				if id == areaID {
					n++
					break
				}
			}
		}
	}
	return n
}

// install registers the input fluents and the four CE definitions.
func (r *Recognizer) install() {
	// Durative input MEs (paper §4.1): stopped and lowSpeed.
	r.engine.DeclareInputFluent(rtec.InputFluent{Name: "stopped", StartEvent: MEStopStart, EndEvent: MEStopEnd})
	r.engine.DeclareInputFluent(rtec.InputFluent{Name: "lowSpeed", StartEvent: MESlowStart, EndEvent: MESlowEnd})

	// RTEC declarations (paper footnote 3): restrict the computation of
	// each durative CE's maximal intervals to the areas it can apply to —
	// the watch areas for suspicious, the forbidden-fishing areas for
	// illegalFishing. Proximity already filters by kind; the declaration
	// makes the restriction structural, as in RTEC.
	var watchIDs, forbiddenIDs []string
	for _, a := range r.areas {
		switch a.Kind {
		case KindWatch:
			watchIDs = append(watchIDs, a.ID)
		case KindForbiddenFishing:
			forbiddenIDs = append(forbiddenIDs, a.ID)
		}
	}
	r.engine.Declare(CESuspicious, watchIDs)
	r.engine.Declare(CEIllegalFishing, forbiddenIDs)

	if r.cfg.ProbThreshold > 0 {
		r.engine.SetProbabilistic(r.cfg.ProbThreshold)
	}

	// Scenario 3 (rule 5): illegalShipping(Area) happens when a vessel's
	// communication gap starts close to a protected area.
	r.engine.DefineEvent(rtec.EventDef{
		Name: CEIllegalShipping,
		Rules: []rtec.TriggerRule{{
			Event: MEGap,
			Map: func(ctx *rtec.Ctx, ev rtec.Event) []string {
				return r.proximity(ev, KindProtected)
			},
		}},
	})

	// Scenario 4 (rule 6): dangerousShipping(Area) happens when a vessel
	// moves slowly over waters too shallow for its draft.
	r.engine.DefineEvent(rtec.EventDef{
		Name: CEDangerousShipping,
		Rules: []rtec.TriggerRule{{
			Event: MESlowMotion,
			Map: func(ctx *rtec.Ctx, ev rtec.Event) []string {
				v := r.vessel(ev.Entity)
				var out []string
				for _, id := range r.proximity(ev, KindShallow) {
					if Shallow(r.byID[id], v) {
						out = append(out, id)
					}
				}
				return out
			},
		}},
	})

	// Scenario 1 (rule-set 3): suspicious(Area) while more than
	// SuspiciousMin-1 vessels are stopped close to a watch area.
	r.engine.DefineSimpleFluent(rtec.SimpleFluentDef{
		Name: CESuspicious,
		Init: map[string][]rtec.TriggerRule{rtec.True: {{
			Event: MEStopStart,
			Map: func(ctx *rtec.Ctx, ev rtec.Event) []string {
				var out []string
				for _, id := range r.proximity(ev, KindWatch) {
					if r.stoppedNear(ctx, id, ev.Time+1) >= r.cfg.SuspiciousMin {
						out = append(out, id)
					}
				}
				return out
			},
		}}},
		Term: map[string][]rtec.TriggerRule{rtec.True: {{
			Event: MEStopEnd,
			Map: func(ctx *rtec.Ctx, ev rtec.Event) []string {
				var out []string
				for _, id := range r.proximity(ev, KindWatch) {
					if r.stoppedNear(ctx, id, ev.Time+1) < r.cfg.SuspiciousMin {
						out = append(out, id)
					}
				}
				return out
			},
		}}},
	})

	// Scenario 2 (rule-set 4): illegalFishing(Area) while a fishing
	// vessel is stopped or moving slowly close to a forbidden area.
	fishingInit := func(ctx *rtec.Ctx, ev rtec.Event) []string {
		if !r.vessel(ev.Entity).Fishing {
			return nil
		}
		return r.proximity(ev, KindForbiddenFishing)
	}
	fishingTerm := func(ctx *rtec.Ctx, ev rtec.Event) []string {
		if !r.vessel(ev.Entity).Fishing {
			return nil
		}
		var out []string
		for _, id := range r.proximity(ev, KindForbiddenFishing) {
			if r.fishingActivityNear(ctx, id, ev.Time+1) == 0 {
				out = append(out, id)
			}
		}
		return out
	}
	r.engine.DefineSimpleFluent(rtec.SimpleFluentDef{
		Name: CEIllegalFishing,
		Init: map[string][]rtec.TriggerRule{rtec.True: {
			{Event: MEStopStart, Map: fishingInit},
			{Event: MESlowMotion, Map: fishingInit},
		}},
		Term: map[string][]rtec.TriggerRule{rtec.True: {
			{Event: MEStopEnd, Map: fishingTerm},
			{Event: MESlowEnd, Map: fishingTerm},
		}},
	})
}

// Snapshot is the recognition output of one query step.
type Snapshot struct {
	Query time.Time
	// Alerts are the complex events newly recognized at this step:
	// instantaneous CE occurrences plus durative CE interval starts not
	// already reported by a previous (overlapping) window.
	Alerts []Alert
	// Recognized counts every CE instance derivable from the current
	// window contents, whether or not previously reported — the quantity
	// the paper's Figure 11 tracks per query time.
	Recognized int
	// Intervals holds the maximal intervals of the durative CEs.
	Intervals map[rtec.FluentKey]rtec.IntervalList
}

// Advance runs one recognition step at query time q over the movement
// events (and, in SpatialFacts mode, the accompanying proximity facts)
// received since the previous step.
func (r *Recognizer) Advance(q time.Time, events []rtec.Event, facts []SpatialFact) Snapshot {
	if r.cfg.Mode == SpatialFacts {
		// Facts share the MEs' window semantics: retain those whose
		// timestamps are still inside (q-ω, q], merge the new batch, and
		// index the survivors.
		windowStart := q.Add(-r.cfg.Window).Unix()
		live := r.facts[:0]
		for _, f := range r.facts {
			if f.Time > windowStart {
				live = append(live, f)
			}
		}
		r.facts = live
		for _, f := range facts {
			if f.Time > windowStart {
				r.facts = append(r.facts, f)
			}
		}
		r.factIdx = make(map[string]map[rtec.Timepoint][]string)
		for _, f := range r.facts {
			byTime := r.factIdx[f.Vessel]
			if byTime == nil {
				byTime = make(map[rtec.Timepoint][]string)
				r.factIdx[f.Vessel] = byTime
			}
			byTime[f.Time] = append(byTime[f.Time], f.AreaID)
		}
	}
	res := r.engine.Advance(q.Unix(), events)

	snap := Snapshot{Query: q, Intervals: make(map[rtec.FluentKey]rtec.IntervalList)}
	add := func(a Alert) {
		snap.Recognized++
		if r.seen[a] {
			return
		}
		r.seen[a] = true
		snap.Alerts = append(snap.Alerts, a)
	}
	for _, ev := range res.Derived {
		// Derived event entities are area IDs (the CE's subject).
		add(Alert{CE: ev.Name, AreaID: ev.Entity, Time: time.Unix(ev.Time, 0).UTC()})
	}
	for key, ivs := range res.Fluents {
		if key.Fluent != CESuspicious && key.Fluent != CEIllegalFishing {
			continue
		}
		snap.Intervals[key] = ivs
		for _, iv := range ivs {
			add(Alert{CE: key.Fluent, AreaID: key.Entity, Time: time.Unix(iv.Since, 0).UTC()})
		}
	}
	slices.SortStableFunc(snap.Alerts, CompareAlerts)
	r.alerts = append(r.alerts, snap.Alerts...)
	return snap
}

// CECount returns the total number of CE recognitions so far: derived
// instantaneous occurrences plus durative interval starts, including
// those recognized before a restored checkpoint was taken.
func (r *Recognizer) CECount() int { return r.restoredAlerts + len(r.alerts) }
