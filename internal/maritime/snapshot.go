package maritime

import (
	"slices"

	"repro/internal/rtec"
)

// Checkpoint support. A recognizer serializes its dynamic state — the
// RTEC engine's working memory and intervals, the retained spatial
// facts, the alert dedupe set, and the alert count — while the event
// description, static world knowledge, and spatial index are rebuilt
// from configuration by NewRecognizer on restore.

// RecognizerSnapshot is the serialized dynamic state of one Recognizer.
// The dedupe set is flattened to a sorted slice so the encoding is
// deterministic.
type RecognizerSnapshot struct {
	Engine     rtec.EngineSnapshot
	Facts      []SpatialFact
	Seen       []Alert
	AlertCount int
}

// Snapshot captures the recognizer's dynamic state. It must not run
// concurrently with Advance.
func (r *Recognizer) Snapshot() RecognizerSnapshot {
	snap := RecognizerSnapshot{
		Engine:     r.engine.Snapshot(),
		Facts:      slices.Clone(r.facts),
		AlertCount: r.CECount(),
	}
	for a := range r.seen {
		snap.Seen = append(snap.Seen, a)
	}
	slices.SortFunc(snap.Seen, CompareAlerts)
	return snap
}

// RestoreSnapshot replaces the recognizer's dynamic state with a
// snapshot's. The recognizer must have been built by NewRecognizer with
// the same configuration and world knowledge as the one that took the
// snapshot; only dynamic state transfers. It must not run concurrently
// with Advance.
func (r *Recognizer) RestoreSnapshot(snap RecognizerSnapshot) {
	r.engine.Restore(snap.Engine)
	r.facts = slices.Clone(snap.Facts)
	r.factIdx = nil // rebuilt on the next Advance
	r.seen = make(map[Alert]bool, len(snap.Seen))
	for _, a := range snap.Seen {
		r.seen[a] = true
	}
	r.alerts = nil
	r.restoredAlerts = snap.AlertCount
}
