// Package maritime implements the paper's complex event definitions for
// maritime surveillance (§4.1) on top of the RTEC engine: the
// suspicious-area, illegal-fishing, illegal-shipping and
// dangerous-shipping CEs, the static vessel and area knowledge they
// consult (fishing designations, drafts, protected / forbidden-fishing
// / shallow polygons), the close/3 Haversine proximity predicate (with
// an optional grid index), conversion of the tracker's critical points
// into the RTEC movement-event stream, the precomputed spatial-facts
// mode of the paper's Figure 11(b), and the east/west partitioning used
// for the two-processor experiments.
package maritime

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/rtec"
	"repro/internal/tracker"
)

// AreaKind classifies areas of interest.
type AreaKind int

// Area kinds. KindWatch marks areas officials monitor for suspicious
// loitering (the paper restricts the computation of the suspicious
// fluent to such areas through RTEC's declarations facility).
const (
	KindProtected AreaKind = iota
	KindForbiddenFishing
	KindShallow
	KindWatch
)

// String names the kind.
func (k AreaKind) String() string {
	return []string{"protected", "forbidden-fishing", "shallow", "watch"}[k]
}

// Area is one static area of interest.
type Area struct {
	ID        string
	Kind      AreaKind
	Poly      *geo.Polygon
	MinDepthM float64 // water depth, meaningful for KindShallow
}

// Vessel is the static description the CE definitions consult: the
// paper's fishing and draft facts (§5.2: "For each vessel we added
// information about its draft, while a number of vessels were
// designated as fishing vessels").
type Vessel struct {
	MMSI    uint32
	Fishing bool
	DraftM  float64
}

// Entity returns the RTEC entity string of the vessel.
func (v Vessel) Entity() string { return strconv.FormatUint(uint64(v.MMSI), 10) }

// Shallow implements the paper's shallow(Area, Vessel) atemporal
// predicate: whether the area's waters are too shallow for the vessel,
// given its draft and a safety margin of one meter of clearance.
func Shallow(a *Area, v Vessel) bool {
	return a.Kind == KindShallow && v.DraftM+1 >= a.MinDepthM
}

// Movement-event names of the RTEC input stream (paper §5.2: "The input
// of RTEC consists of the MEs gap, lowSpeed, stopped, speedChange and
// turn, as well as the coordinates of each vessel at the time of ME
// detection").
const (
	METurn        = "turn"
	MESpeedChange = "speedChange"
	MEGap         = "gap" // occurs when the communication gap starts
	MEGapEnd      = "gapEnd"
	MEStopStart   = "stopStart" // demarcates stopped(Vessel)=true
	MEStopEnd     = "stopEnd"
	MESlowStart   = "slowStart" // demarcates lowSpeed(Vessel)=true
	MESlowEnd     = "slowEnd"
	MESlowMotion  = "slowMotion" // instantaneous: vessel moving 'too' slowly
)

// Complex event names.
const (
	CESuspicious        = "suspicious"
	CEIllegalFishing    = "illegalFishing"
	CEIllegalShipping   = "illegalShipping"
	CEDangerousShipping = "dangerousShipping"
)

// Pairwise complex event names, recognized by the cross-vessel
// analytics tier over the shared proximity index rather than by RTEC
// rules: the rendezvous/dark-activity patterns of Pitsikalis et al.
const (
	// CERendezvous: two vessels slow/stopped within a distance threshold,
	// sustained over several slides, away from port areas.
	CERendezvous = "rendezvous"
	// CEDarkRendezvous: two vessels with overlapping AIS gaps whose gap
	// endpoints converge at plausible implied speeds — a candidate
	// ship-to-ship transfer carried out dark.
	CEDarkRendezvous = "darkRendezvous"
	// CECollisionCourse: a pair predicted by CPA screening to pass
	// dangerously close within the look-ahead horizon.
	CECollisionCourse = "collisionCourse"
)

// MEStream converts tracker critical points into the RTEC movement
// event stream. Every event carries the vessel coordinates at detection
// time (the paper's coord fluent). EventFirst anchors contribute no ME.
func MEStream(points []tracker.CriticalPoint) []rtec.Event {
	return MEStreamInto(make([]rtec.Event, 0, len(points)), points)
}

// MEStreamInto is MEStream appending into a caller-owned slice, for hot
// paths that recycle the event buffer across slides. The caller must not
// hand dst to a consumer that outlives the slide.
func MEStreamInto(dst []rtec.Event, points []tracker.CriticalPoint) []rtec.Event {
	out := dst
	for _, cp := range points {
		name := ""
		switch cp.Type {
		case tracker.EventTurn, tracker.EventSmoothTurn:
			name = METurn
		case tracker.EventSpeedChange:
			name = MESpeedChange
		case tracker.EventGapStart:
			name = MEGap
		case tracker.EventGapEnd:
			name = MEGapEnd
		case tracker.EventStopStart:
			name = MEStopStart
		case tracker.EventStopEnd:
			name = MEStopEnd
		case tracker.EventSlowStart:
			name = MESlowStart
		case tracker.EventSlowEnd:
			name = MESlowEnd
		default:
			continue
		}
		ev := rtec.Event{
			Name:   name,
			Entity: strconv.FormatUint(uint64(cp.MMSI), 10),
			Time:   cp.Time.Unix(),
			Lon:    cp.Pos.Lon,
			Lat:    cp.Pos.Lat,
			P:      cp.Confidence, // zero reads as certain downstream
		}
		out = append(out, ev)
		// A slow-motion episode also yields the instantaneous slowMotion
		// ME the fishing and shallow-water rules trigger on.
		if cp.Type == tracker.EventSlowStart {
			out = append(out, rtec.Event{
				Name: MESlowMotion, Entity: ev.Entity, Time: ev.Time,
				Lon: ev.Lon, Lat: ev.Lat, P: ev.P,
			})
		}
	}
	return out
}

// Alert is one recognized complex event pushed to the marine
// authorities: either an instantaneous occurrence (illegalShipping,
// dangerousShipping) or the start of a durative one (suspicious,
// illegalFishing).
type Alert struct {
	CE     string
	AreaID string
	Time   time.Time
	// Vessel is the triggering vessel for instantaneous CEs, 0 for
	// durative area-level CEs.
	Vessel uint32
	// Vessel2 is the second vessel of a pairwise CE (rendezvous,
	// darkRendezvous, collisionCourse), with Vessel < Vessel2; 0 for
	// single-vessel and area-level CEs. omitempty keeps the JSON of
	// every existing alert kind byte-identical.
	Vessel2 uint32 `json:"Vessel2,omitempty"`
}

// String renders the alert.
func (a Alert) String() string {
	if a.Vessel2 != 0 {
		return fmt.Sprintf("%s between vessels %d and %d (%s)", a.CE,
			a.Vessel, a.Vessel2, a.Time.UTC().Format(time.RFC3339))
	}
	if a.Vessel != 0 {
		return fmt.Sprintf("%s at %s by vessel %d (%s)", a.CE, a.AreaID, a.Vessel,
			a.Time.UTC().Format(time.RFC3339))
	}
	return fmt.Sprintf("%s at %s (%s)", a.CE, a.AreaID, a.Time.UTC().Format(time.RFC3339))
}

// CompareAlerts is the canonical alert ordering — time, then CE name,
// then area — used both inside the recognizer and when merging the
// alert streams of parallel recognizers. It is a concrete comparator
// for slices.SortFunc, keeping reflection-based sorting off the
// per-slide path.
func CompareAlerts(a, b Alert) int {
	if c := a.Time.Compare(b.Time); c != 0 {
		return c
	}
	if a.CE != b.CE {
		if a.CE < b.CE {
			return -1
		}
		return 1
	}
	if a.AreaID != b.AreaID {
		if a.AreaID < b.AreaID {
			return -1
		}
		return 1
	}
	return 0
}
