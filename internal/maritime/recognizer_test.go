package maritime

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rtec"
	"repro/internal/tracker"
)

var t0 = time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)

func sq(lon, lat, half float64) *geo.Polygon {
	return geo.MustPolygon([]geo.Point{
		{Lon: lon - half, Lat: lat - half},
		{Lon: lon + half, Lat: lat - half},
		{Lon: lon + half, Lat: lat + half},
		{Lon: lon - half, Lat: lat + half},
	})
}

// testWorld: one area of each kind, well separated.
func testAreas() []Area {
	return []Area{
		{ID: "prot-1", Kind: KindProtected, Poly: sq(24.0, 37.0, 0.05)},
		{ID: "fish-1", Kind: KindForbiddenFishing, Poly: sq(25.0, 36.0, 0.05)},
		{ID: "shal-1", Kind: KindShallow, Poly: sq(26.0, 38.0, 0.05), MinDepthM: 5},
		{ID: "watch-1", Kind: KindWatch, Poly: sq(23.0, 36.0, 0.05)},
	}
}

func testVessels() []Vessel {
	return []Vessel{
		{MMSI: 1, Fishing: true, DraftM: 2},
		{MMSI: 2, Fishing: false, DraftM: 8}, // deep draft
		{MMSI: 3, Fishing: false, DraftM: 2},
		{MMSI: 4}, {MMSI: 5}, {MMSI: 6}, {MMSI: 7},
	}
}

func ev(name string, mmsi int, at time.Duration, lon, lat float64) rtec.Event {
	return rtec.Event{
		Name: name, Entity: entity(mmsi), Time: t0.Add(at).Unix(), Lon: lon, Lat: lat,
	}
}

func entity(mmsi int) string {
	return rtec.Event{Entity: ""}.Entity + itoa(mmsi)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func newTestRecognizer(mode Mode) *Recognizer {
	return NewRecognizer(Config{
		Window: 2 * time.Hour, CloseMeters: 3000, Mode: mode,
	}, testVessels(), testAreas())
}

func hasAlert(alerts []Alert, ce, area string) bool {
	for _, a := range alerts {
		if a.CE == ce && a.AreaID == area {
			return true
		}
	}
	return false
}

func TestIllegalShippingOnGapNearProtectedArea(t *testing.T) {
	r := newTestRecognizer(SpatialOnDemand)
	snap := r.Advance(t0.Add(time.Hour), []rtec.Event{
		ev(MEGap, 2, 30*time.Minute, 24.0, 37.0),  // inside prot-1
		ev(MEGap, 3, 40*time.Minute, 20.0, 40.0),  // open water
		ev(METurn, 2, 20*time.Minute, 24.0, 37.0), // turns never trigger it
	}, nil)
	if !hasAlert(snap.Alerts, CEIllegalShipping, "prot-1") {
		t.Errorf("no illegalShipping alert: %v", snap.Alerts)
	}
	n := 0
	for _, a := range snap.Alerts {
		if a.CE == CEIllegalShipping {
			n++
		}
	}
	if n != 1 {
		t.Errorf("illegalShipping alerts = %d, want 1", n)
	}
}

func TestDangerousShippingRespectsDraft(t *testing.T) {
	r := newTestRecognizer(SpatialOnDemand)
	snap := r.Advance(t0.Add(time.Hour), []rtec.Event{
		// Deep-draft vessel 2 (8 m) creeping over 5 m shallows: dangerous.
		ev(MESlowMotion, 2, 10*time.Minute, 26.0, 38.0),
		// Shallow-draft vessel 3 (2 m): 5 m of water is fine.
		ev(MESlowMotion, 3, 12*time.Minute, 26.0, 38.0),
	}, nil)
	var areas []string
	for _, a := range snap.Alerts {
		if a.CE == CEDangerousShipping {
			areas = append(areas, a.AreaID)
		}
	}
	if !reflect.DeepEqual(areas, []string{"shal-1"}) {
		t.Errorf("dangerousShipping alerts = %v, want exactly one for shal-1", areas)
	}
}

// stopEvents builds the stopStart/stopEnd pair for a vessel at the
// watch area.
func stopAt(mmsi int, start, end time.Duration) []rtec.Event {
	return []rtec.Event{
		ev(MEStopStart, mmsi, start, 23.0, 36.0),
		ev(MEStopEnd, mmsi, end, 23.0, 36.0),
	}
}

func TestSuspiciousAreaNeedsFourVessels(t *testing.T) {
	r := newTestRecognizer(SpatialOnDemand)
	var events []rtec.Event
	// Vessels 4..7 stop in the watch area at staggered times.
	events = append(events, stopAt(4, 10*time.Minute, 100*time.Minute)...)
	events = append(events, stopAt(5, 20*time.Minute, 90*time.Minute)...)
	events = append(events, stopAt(6, 30*time.Minute, 80*time.Minute)...)
	events = append(events, stopAt(7, 40*time.Minute, 70*time.Minute)...)
	snap := r.Advance(t0.Add(2*time.Hour), events, nil)

	key := rtec.FluentKey{Fluent: CESuspicious, Entity: "watch-1", Value: rtec.True}
	ivs := snap.Intervals[key]
	if len(ivs) != 1 {
		t.Fatalf("suspicious intervals = %v, want one", ivs)
	}
	// Suspicious from the 4th stop (40 min) until the count drops below
	// 4 (first departure at 70 min).
	wantSince := t0.Add(40 * time.Minute).Unix()
	wantUntil := t0.Add(70 * time.Minute).Unix()
	if ivs[0].Since != wantSince || ivs[0].Until != wantUntil {
		t.Errorf("suspicious = %v, want (%d, %d]", ivs[0], wantSince, wantUntil)
	}
}

func TestSuspiciousNotTriggeredByThreeVessels(t *testing.T) {
	r := newTestRecognizer(SpatialOnDemand)
	var events []rtec.Event
	events = append(events, stopAt(4, 10*time.Minute, 100*time.Minute)...)
	events = append(events, stopAt(5, 20*time.Minute, 90*time.Minute)...)
	events = append(events, stopAt(6, 30*time.Minute, 80*time.Minute)...)
	snap := r.Advance(t0.Add(2*time.Hour), events, nil)
	key := rtec.FluentKey{Fluent: CESuspicious, Entity: "watch-1", Value: rtec.True}
	if got := snap.Intervals[key]; got != nil {
		t.Errorf("three vessels already suspicious: %v", got)
	}
}

func TestIllegalFishingLifecycle(t *testing.T) {
	r := newTestRecognizer(SpatialOnDemand)
	events := []rtec.Event{
		// Fishing vessel 1 trawls inside the forbidden area.
		ev(MESlowStart, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowEnd, 1, 50*time.Minute, 25.0, 36.0),
		// Non-fishing vessel 3 does the same: no violation.
		ev(MESlowStart, 3, 15*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 3, 15*time.Minute, 25.0, 36.0),
		ev(MESlowEnd, 3, 45*time.Minute, 25.0, 36.0),
	}
	snap := r.Advance(t0.Add(2*time.Hour), events, nil)
	key := rtec.FluentKey{Fluent: CEIllegalFishing, Entity: "fish-1", Value: rtec.True}
	ivs := snap.Intervals[key]
	if len(ivs) != 1 {
		t.Fatalf("illegalFishing intervals = %v", ivs)
	}
	if ivs[0].Since != t0.Add(10*time.Minute).Unix() || ivs[0].Until != t0.Add(50*time.Minute).Unix() {
		t.Errorf("interval = %v", ivs[0])
	}
}

func TestIllegalFishingPersistsWhileAnotherFisherActive(t *testing.T) {
	vessels := append(testVessels(), Vessel{MMSI: 8, Fishing: true, DraftM: 2})
	r := NewRecognizer(Config{Window: 2 * time.Hour}, vessels, testAreas())
	events := []rtec.Event{
		ev(MESlowStart, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowStart, 8, 20*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 8, 20*time.Minute, 25.0, 36.0),
		// Vessel 1 leaves; vessel 8 keeps trawling → CE must persist.
		ev(MESlowEnd, 1, 40*time.Minute, 25.0, 36.0),
		ev(MESlowEnd, 8, 80*time.Minute, 25.0, 36.0),
	}
	snap := r.Advance(t0.Add(2*time.Hour), events, nil)
	key := rtec.FluentKey{Fluent: CEIllegalFishing, Entity: "fish-1", Value: rtec.True}
	ivs := snap.Intervals[key]
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v, want one continuous", ivs)
	}
	if ivs[0].Until != t0.Add(80*time.Minute).Unix() {
		t.Errorf("interval ends %d, want the second vessel's departure", ivs[0].Until)
	}
}

func TestSpatialFactsModeMatchesOnDemand(t *testing.T) {
	events := []rtec.Event{
		ev(MEGap, 2, 30*time.Minute, 24.0, 37.0),
		ev(MESlowStart, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowEnd, 1, 50*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 2, 40*time.Minute, 26.0, 38.0),
	}
	onDemand := newTestRecognizer(SpatialOnDemand).Advance(t0.Add(2*time.Hour), events, nil)

	gen := NewFactGenerator(testAreas(), 3000)
	facts := gen.Facts(events)
	if len(facts) == 0 {
		t.Fatal("no spatial facts generated")
	}
	withFacts := newTestRecognizer(SpatialFacts).Advance(t0.Add(2*time.Hour), events, facts)

	if !reflect.DeepEqual(onDemand.Alerts, withFacts.Alerts) {
		t.Errorf("alerts differ:\non-demand: %v\nfacts:     %v", onDemand.Alerts, withFacts.Alerts)
	}
	if !reflect.DeepEqual(onDemand.Intervals, withFacts.Intervals) {
		t.Errorf("intervals differ:\non-demand: %v\nfacts:     %v", onDemand.Intervals, withFacts.Intervals)
	}
}

func TestGridIndexAblationMatches(t *testing.T) {
	events := []rtec.Event{
		ev(MEGap, 2, 30*time.Minute, 24.0, 37.0),
		ev(MESlowMotion, 2, 40*time.Minute, 26.0, 38.0),
	}
	withIdx := newTestRecognizer(SpatialOnDemand).Advance(t0.Add(time.Hour), events, nil)
	noIdx := NewRecognizer(Config{
		Window: 2 * time.Hour, DisableGridIndex: true,
	}, testVessels(), testAreas()).Advance(t0.Add(time.Hour), events, nil)
	if !reflect.DeepEqual(withIdx.Alerts, noIdx.Alerts) {
		t.Errorf("grid index changes results:\nwith: %v\nwithout: %v", withIdx.Alerts, noIdx.Alerts)
	}
}

func TestMEStreamConversion(t *testing.T) {
	cps := []tracker.CriticalPoint{
		{MMSI: 9, Type: tracker.EventTurn, Time: t0, Pos: geo.Point{Lon: 1, Lat: 2}},
		{MMSI: 9, Type: tracker.EventSmoothTurn, Time: t0.Add(time.Minute)},
		{MMSI: 9, Type: tracker.EventSpeedChange, Time: t0.Add(2 * time.Minute)},
		{MMSI: 9, Type: tracker.EventGapStart, Time: t0.Add(3 * time.Minute)},
		{MMSI: 9, Type: tracker.EventGapEnd, Time: t0.Add(4 * time.Minute)},
		{MMSI: 9, Type: tracker.EventStopStart, Time: t0.Add(5 * time.Minute)},
		{MMSI: 9, Type: tracker.EventStopEnd, Time: t0.Add(6 * time.Minute)},
		{MMSI: 9, Type: tracker.EventSlowStart, Time: t0.Add(7 * time.Minute)},
		{MMSI: 9, Type: tracker.EventSlowEnd, Time: t0.Add(8 * time.Minute)},
		{MMSI: 9, Type: tracker.EventFirst, Time: t0.Add(9 * time.Minute)},
	}
	mes := MEStream(cps)
	var names []string
	for _, m := range mes {
		names = append(names, m.Name)
	}
	want := []string{
		METurn, METurn, MESpeedChange, MEGap, MEGapEnd,
		MEStopStart, MEStopEnd, MESlowStart, MESlowMotion, MESlowEnd,
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("MEStream = %v, want %v", names, want)
	}
	if mes[0].Lon != 1 || mes[0].Lat != 2 || mes[0].Entity != "9" {
		t.Errorf("coords/entity not carried: %+v", mes[0])
	}
}

func TestPartitioning(t *testing.T) {
	areas := testAreas()
	west, east := PartitionAreas(areas, 24.5)
	if len(west)+len(east) != len(areas) {
		t.Fatal("areas lost in partition")
	}
	for _, a := range west {
		if a.Poly.Centroid().Lon >= 24.5 {
			t.Errorf("area %s misplaced west", a.ID)
		}
	}

	events := []rtec.Event{
		ev(METurn, 1, 0, 23.0, 36.0),
		ev(METurn, 2, 0, 26.0, 38.0),
	}
	we, ee := PartitionEvents(events, 24.5)
	if len(we) != 1 || len(ee) != 1 {
		t.Errorf("event partition = %d/%d", len(we), len(ee))
	}

	facts := []SpatialFact{
		{Vessel: "1", AreaID: "watch-1"},
		{Vessel: "2", AreaID: "shal-1"},
	}
	wf, ef := PartitionFacts(facts, west)
	if len(wf) != 1 || len(ef) != 1 {
		t.Errorf("fact partition = %d/%d", len(wf), len(ef))
	}
}

func TestShallowPredicate(t *testing.T) {
	a := &Area{Kind: KindShallow, MinDepthM: 5}
	if !Shallow(a, Vessel{DraftM: 8}) {
		t.Error("8 m draft in 5 m water should be shallow")
	}
	if Shallow(a, Vessel{DraftM: 2}) {
		t.Error("2 m draft in 5 m water should be fine")
	}
	deep := &Area{Kind: KindProtected, MinDepthM: 5}
	if Shallow(deep, Vessel{DraftM: 8}) {
		t.Error("non-shallow areas are never 'shallow'")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{CE: CEIllegalShipping, AreaID: "prot-1", Time: t0}
	if a.String() == "" {
		t.Error("empty alert string")
	}
	b := Alert{CE: CEDangerousShipping, AreaID: "shal-1", Time: t0, Vessel: 42}
	if b.String() == a.String() {
		t.Error("vessel not rendered")
	}
}

func TestSpatialFactsRetainedAcrossAdvances(t *testing.T) {
	// The slowStart arrives in the first slide, the slowEnd in the
	// second: the facts for the first slide's MEs must still resolve at
	// the second query time (they share the MEs' window semantics).
	first := []rtec.Event{
		ev(MESlowStart, 1, 10*time.Minute, 25.0, 36.0),
		ev(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0),
	}
	second := []rtec.Event{
		ev(MESlowEnd, 1, 70*time.Minute, 25.0, 36.0),
	}
	gen := NewFactGenerator(testAreas(), 3000)

	onDemand := newTestRecognizer(SpatialOnDemand)
	onDemand.Advance(t0.Add(time.Hour), first, nil)
	wantSnap := onDemand.Advance(t0.Add(2*time.Hour), second, nil)

	withFacts := newTestRecognizer(SpatialFacts)
	withFacts.Advance(t0.Add(time.Hour), first, gen.Facts(first))
	gotSnap := withFacts.Advance(t0.Add(2*time.Hour), second, gen.Facts(second))

	key := rtec.FluentKey{Fluent: CEIllegalFishing, Entity: "fish-1", Value: rtec.True}
	want := wantSnap.Intervals[key]
	got := gotSnap.Intervals[key]
	if len(want) == 0 {
		t.Fatal("on-demand mode recognized nothing — fixture broken")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("facts mode diverged across advances: got %v, want %v", got, want)
	}
	if gotSnap.Recognized != wantSnap.Recognized {
		t.Errorf("Recognized = %d, want %d", gotSnap.Recognized, wantSnap.Recognized)
	}
}

func TestProbabilisticRecognitionThresholds(t *testing.T) {
	// Probabilistic mode: a barely-detected trawl (confidence 0.55)
	// stays below a 0.8 belief threshold; a confident one crosses it.
	evP := func(name string, mmsi int, at time.Duration, lon, lat, p float64) rtec.Event {
		e := ev(name, mmsi, at, lon, lat)
		e.P = p
		return e
	}
	vessels := append(testVessels(), Vessel{MMSI: 8, Fishing: true, DraftM: 2})
	r := NewRecognizer(Config{Window: 2 * time.Hour, ProbThreshold: 0.8},
		vessels, testAreas())
	snap := r.Advance(t0.Add(2*time.Hour), []rtec.Event{
		// Vessel 1: marginal detection.
		evP(MESlowStart, 1, 10*time.Minute, 25.0, 36.0, 0.55),
		evP(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0, 0.55),
		evP(MESlowEnd, 1, 50*time.Minute, 25.0, 36.0, 1),
	}, nil)
	key := rtec.FluentKey{Fluent: CEIllegalFishing, Entity: "fish-1", Value: rtec.True}
	if got := snap.Intervals[key]; got != nil {
		t.Errorf("marginal detection crossed the belief threshold: %v", got)
	}
	// Belief is still inspectable below the threshold.
	belief := r.Engine().BeliefOf(key)
	if p := rtec.ProbAt(belief, t0.Add(20*time.Minute).Unix()); p < 0.4 || p >= 0.8 {
		t.Errorf("belief = %v, want ≈0.55", p)
	}

	r2 := NewRecognizer(Config{Window: 2 * time.Hour, ProbThreshold: 0.8},
		vessels, testAreas())
	snap2 := r2.Advance(t0.Add(2*time.Hour), []rtec.Event{
		evP(MESlowStart, 8, 10*time.Minute, 25.0, 36.0, 0.95),
		evP(MESlowMotion, 8, 10*time.Minute, 25.0, 36.0, 0.95),
		evP(MESlowEnd, 8, 50*time.Minute, 25.0, 36.0, 1),
	}, nil)
	if got := snap2.Intervals[key]; len(got) != 1 {
		t.Errorf("confident detection missed: %v", got)
	}
}

func TestCrispModeIgnoresConfidences(t *testing.T) {
	// Without ProbThreshold, even a 0.55-confidence trawl raises the CE.
	r := newTestRecognizer(SpatialOnDemand)
	low := ev(MESlowStart, 1, 10*time.Minute, 25.0, 36.0)
	low.P = 0.55
	lowM := ev(MESlowMotion, 1, 10*time.Minute, 25.0, 36.0)
	lowM.P = 0.55
	snap := r.Advance(t0.Add(time.Hour), []rtec.Event{low, lowM}, nil)
	key := rtec.FluentKey{Fluent: CEIllegalFishing, Entity: "fish-1", Value: rtec.True}
	if got := snap.Intervals[key]; len(got) != 1 {
		t.Errorf("crisp recognition suppressed a low-confidence CE: %v", got)
	}
}
