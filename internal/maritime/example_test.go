package maritime_test

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/rtec"
)

// ExampleRecognizer walks the paper's Scenario 3: a vessel's
// communication gap starting close to a protected area raises
// illegalShipping.
func ExampleRecognizer() {
	park, _ := geo.NewPolygon([]geo.Point{
		{Lon: 23.85, Lat: 39.10}, {Lon: 23.95, Lat: 39.10},
		{Lon: 23.95, Lat: 39.20}, {Lon: 23.85, Lat: 39.20},
	})
	rec := maritime.NewRecognizer(
		maritime.Config{Window: time.Hour},
		[]maritime.Vessel{{MMSI: 237001234, DraftM: 9}},
		[]maritime.Area{{ID: "marine-park", Kind: maritime.KindProtected, Poly: park}},
	)

	// The trajectory detection component reports a gap ME when the
	// vessel stops sending signals, stamped at its last known position
	// — 1 km west of the park.
	gapAt := time.Date(2009, 6, 1, 4, 30, 0, 0, time.UTC)
	snap := rec.Advance(gapAt.Add(10*time.Minute), []rtec.Event{{
		Name:   maritime.MEGap,
		Entity: "237001234",
		Time:   gapAt.Unix(),
		Lon:    23.838, Lat: 39.15,
	}}, nil)

	for _, alert := range snap.Alerts {
		fmt.Println(alert)
	}
	// Output:
	// illegalShipping at marine-park (2009-06-01T04:30:00Z)
}
