package maritime

import (
	"repro/internal/rtec"
)

// PartitionAreas splits the areas into west and east sets by the given
// meridian, the paper's two-processor configuration (§5.2): "One
// processor performed CE recognition for the areas located in ... the
// west part of the area under surveillance", the other for the east.
func PartitionAreas(areas []Area, medianLon float64) (west, east []Area) {
	for _, a := range areas {
		if a.Poly.Centroid().Lon < medianLon {
			west = append(west, a)
		} else {
			east = append(east, a)
		}
	}
	return west, east
}

// PartitionEvents routes movement events by vessel location: events
// west of the meridian go to the west processor, the rest east. A
// vessel crossing the meridian contributes to both engines over time,
// matching the paper's forwarding of input MEs "to the appropriate
// processor (according to vessel location)".
func PartitionEvents(events []rtec.Event, medianLon float64) (west, east []rtec.Event) {
	for _, ev := range events {
		if ev.Lon < medianLon {
			west = append(west, ev)
		} else {
			east = append(east, ev)
		}
	}
	return west, east
}

// PartitionFacts routes spatial facts to the processor owning their
// area.
func PartitionFacts(facts []SpatialFact, westAreas []Area) (west, east []SpatialFact) {
	isWest := make(map[string]bool, len(westAreas))
	for _, a := range westAreas {
		isWest[a.ID] = true
	}
	for _, f := range facts {
		if isWest[f.AreaID] {
			west = append(west, f)
		} else {
			east = append(east, f)
		}
	}
	return west, east
}
