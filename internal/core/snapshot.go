package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/analytics"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

// Checkpoint support. The system serializes every stateful pipeline
// stage — tracker vessels, recognizer working memories, the
// moving-object store — into one Snapshot the checkpoint subsystem
// frames and persists. Configuration and static world knowledge are not
// serialized: the restoring process builds an identically configured
// System first, then restores dynamic state into it.
//
// Watchdog and supervision state (down targets, trip counters,
// journals) is deliberately NOT checkpointed: a restart — or an
// in-process RestoreSnapshot — is exactly the recovery action for a
// wedged target, so the restored system starts with every target
// healthy and its journals re-based on the restored state.

// Typed restore failures, matched with errors.Is.
var (
	// ErrTopologyMismatch means the snapshot was taken by a system with a
	// different recognizer layout (Processors count, or recognition
	// enabled vs disabled) than the one restoring it.
	ErrTopologyMismatch = errors.New("core: snapshot recognizer topology does not match this system")
	// ErrWedged means the system has targets out of service — recognizers
	// abandoned by the watchdog, quarantined tracker shards, a
	// quarantined store — whose state is incomplete or may still be
	// mutating in abandoned goroutines, so a consistent snapshot cannot
	// be taken. With Config.SelfHeal the condition is transient: once
	// Heal re-admits the targets (the supervisor does this
	// automatically), Snapshot succeeds again.
	ErrWedged = errors.New("core: cannot snapshot a system with out-of-service targets")
)

// Snapshot is the serialized dynamic state of a System. Recognizers
// holds one entry per recognizer in partition order (a single entry for
// an unpartitioned system, none with recognition disabled); Store is the
// MOD's own framed snapshot, kept opaque so its format versioning stays
// with the mod package.
type Snapshot struct {
	Tracker     tracker.Snapshot
	Recognizers []maritime.RecognizerSnapshot
	Store       []byte
	// Analytics is the cross-vessel tier's state; nil when the tier is
	// disabled or the snapshot predates it (gob leaves absent fields
	// zero, so old checkpoints restore cleanly with the tier reset).
	Analytics *analytics.Snapshot
}

// recognizerCount is the structural recognizer layout Snapshot/Restore
// must agree on.
func (s *System) recognizerCount() int {
	if s.recognizer != nil {
		return 1
	}
	return len(s.partitions)
}

// Snapshot captures the system's complete dynamic state. It must not
// run concurrently with ProcessBatch. It fails with ErrWedged when the
// watchdog has abandoned a recognizer, because an abandoned goroutine
// may still be mutating that recognizer's state.
func (s *System) Snapshot() (Snapshot, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.singleDown.Load() != partUp || s.storeDown.Load() != partUp {
		return Snapshot{}, ErrWedged
	}
	for _, p := range s.partitions {
		if p.down.Load() != partUp {
			return Snapshot{}, ErrWedged
		}
	}
	if ts := s.tracker.FaultStats(); ts.Quarantined > 0 || ts.Failed > 0 {
		return Snapshot{}, ErrWedged
	}
	snap := Snapshot{Tracker: s.tracker.Snapshot()}
	if s.recognizer != nil {
		snap.Recognizers = []maritime.RecognizerSnapshot{s.recognizer.Snapshot()}
	}
	for _, p := range s.partitions {
		snap.Recognizers = append(snap.Recognizers, p.rec.Snapshot())
	}
	var store bytes.Buffer
	if err := s.store.SaveSnapshot(&store); err != nil {
		return Snapshot{}, fmt.Errorf("core: snapshotting store: %w", err)
	}
	snap.Store = store.Bytes()
	if s.analytics != nil {
		snap.Analytics = s.analytics.Snapshot()
	}
	return snap, nil
}

// RestoreSnapshot replaces the system's dynamic state with a
// snapshot's. The system must be configured identically to the one the
// snapshot was taken from, except for TrackerShards, which may differ
// freely (the tracker encoding is shard-count-independent). A topology
// mismatch or a corrupt embedded store snapshot fails with a typed
// error before any state is replaced — except that a store failure
// after the tracker restored leaves the tracker restored; callers treat
// a failed restore as fatal and fall back to an older checkpoint or a
// cold start. It must not run concurrently with ProcessBatch.
func (s *System) RestoreSnapshot(snap Snapshot) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if len(snap.Recognizers) != s.recognizerCount() {
		return fmt.Errorf("%w: snapshot has %d recognizers, system has %d",
			ErrTopologyMismatch, len(snap.Recognizers), s.recognizerCount())
	}
	// A restore supersedes any quarantine or failure: down targets are
	// replaced outright (a wedged goroutine may still be touching the
	// old objects) and re-admitted with the restored state.
	if s.selfHeal && s.storeDown.Load() != partUp {
		s.store = mod.New(s.ports)
	}
	if err := s.store.RestoreSnapshot(bytes.NewReader(snap.Store)); err != nil {
		return err
	}
	if err := s.tracker.RestoreSnapshot(snap.Tracker); err != nil {
		return err
	}
	if s.recognizer != nil {
		if s.selfHeal && s.singleDown.Load() != partUp {
			s.recognizer = maritime.NewRecognizer(s.cfg.Recognition, s.vessels, s.areas)
		}
		s.recognizer.RestoreSnapshot(snap.Recognizers[0])
	}
	for i, p := range s.partitions {
		if s.selfHeal && p.down.Load() != partUp {
			p.rec = maritime.NewRecognizer(s.cfg.Recognition, s.vessels, p.areas)
		}
		p.rec.RestoreSnapshot(snap.Recognizers[i])
	}
	s.storeDown.Store(partUp)
	s.storeInfo = supervise.Quarantine{}
	s.singleDown.Store(partUp)
	s.singleInfo = supervise.Quarantine{}
	for _, p := range s.partitions {
		p.down.Store(partUp)
		p.info = supervise.Quarantine{}
	}
	s.recovered = nil
	// Lenient on both sides: a snapshot without analytics state resets
	// the tier, and analytics state restored into a system without the
	// tier is ignored — checkpoints stay portable across the tier being
	// toggled.
	if s.analytics != nil {
		s.analytics.Restore(snap.Analytics)
	}
	// Journals must describe the restored state, not the one it
	// replaced.
	if s.selfHeal {
		for i := range s.recJ {
			s.recJ[i] = recJournal{base: s.recAt(i).Snapshot(), downFrom: -1}
		}
		if s.storeJ != nil {
			*s.storeJ = storeJournal{base: s.storeBytes()}
		}
	}
	return nil
}
