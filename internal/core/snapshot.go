package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/maritime"
	"repro/internal/tracker"
)

// Checkpoint support. The system serializes every stateful pipeline
// stage — tracker vessels, recognizer working memories, the
// moving-object store — into one Snapshot the checkpoint subsystem
// frames and persists. Configuration and static world knowledge are not
// serialized: the restoring process builds an identically configured
// System first, then restores dynamic state into it.
//
// Watchdog degradation state (wedged recognizers, trip counters) is
// deliberately NOT checkpointed: a restart is exactly the recovery
// action for a wedged recognizer, so the restored process starts with
// every partition healthy.

// Typed restore failures, matched with errors.Is.
var (
	// ErrTopologyMismatch means the snapshot was taken by a system with a
	// different recognizer layout (Processors count, or recognition
	// enabled vs disabled) than the one restoring it.
	ErrTopologyMismatch = errors.New("core: snapshot recognizer topology does not match this system")
	// ErrWedged means the system has recognizers abandoned by the
	// watchdog; their state may still be mutating in abandoned goroutines,
	// so a consistent snapshot cannot be taken.
	ErrWedged = errors.New("core: cannot snapshot a system with wedged recognizers")
)

// Snapshot is the serialized dynamic state of a System. Recognizers
// holds one entry per recognizer in partition order (a single entry for
// an unpartitioned system, none with recognition disabled); Store is the
// MOD's own framed snapshot, kept opaque so its format versioning stays
// with the mod package.
type Snapshot struct {
	Tracker     tracker.Snapshot
	Recognizers []maritime.RecognizerSnapshot
	Store       []byte
}

// recognizerCount is the structural recognizer layout Snapshot/Restore
// must agree on.
func (s *System) recognizerCount() int {
	if s.recognizer != nil {
		return 1
	}
	return len(s.partitions)
}

// Snapshot captures the system's complete dynamic state. It must not
// run concurrently with ProcessBatch. It fails with ErrWedged when the
// watchdog has abandoned a recognizer, because an abandoned goroutine
// may still be mutating that recognizer's state.
func (s *System) Snapshot() (Snapshot, error) {
	if s.recognizerWedged.Load() {
		return Snapshot{}, ErrWedged
	}
	for _, p := range s.partitions {
		if p.wedged.Load() {
			return Snapshot{}, ErrWedged
		}
	}
	snap := Snapshot{Tracker: s.tracker.Snapshot()}
	if s.recognizer != nil {
		snap.Recognizers = []maritime.RecognizerSnapshot{s.recognizer.Snapshot()}
	}
	for _, p := range s.partitions {
		snap.Recognizers = append(snap.Recognizers, p.rec.Snapshot())
	}
	var store bytes.Buffer
	if err := s.store.SaveSnapshot(&store); err != nil {
		return Snapshot{}, fmt.Errorf("core: snapshotting store: %w", err)
	}
	snap.Store = store.Bytes()
	return snap, nil
}

// RestoreSnapshot replaces the system's dynamic state with a
// snapshot's. The system must be configured identically to the one the
// snapshot was taken from, except for TrackerShards, which may differ
// freely (the tracker encoding is shard-count-independent). A topology
// mismatch or a corrupt embedded store snapshot fails with a typed
// error before any state is replaced — except that a store failure
// after the tracker restored leaves the tracker restored; callers treat
// a failed restore as fatal and fall back to an older checkpoint or a
// cold start. It must not run concurrently with ProcessBatch.
func (s *System) RestoreSnapshot(snap Snapshot) error {
	if len(snap.Recognizers) != s.recognizerCount() {
		return fmt.Errorf("%w: snapshot has %d recognizers, system has %d",
			ErrTopologyMismatch, len(snap.Recognizers), s.recognizerCount())
	}
	if err := s.store.RestoreSnapshot(bytes.NewReader(snap.Store)); err != nil {
		return err
	}
	if err := s.tracker.RestoreSnapshot(snap.Tracker); err != nil {
		return err
	}
	if s.recognizer != nil {
		s.recognizer.RestoreSnapshot(snap.Recognizers[0])
	}
	for i, p := range s.partitions {
		p.rec.RestoreSnapshot(snap.Recognizers[i])
	}
	return nil
}
