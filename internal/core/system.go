// Package core assembles the complete maritime surveillance system of
// the paper's Figure 1: the Data Scanner feeds a sliding window whose
// slides drive the Mobility Tracker and Compressor; fresh critical
// points go to complex event recognition (RTEC with the maritime CE
// definitions); expired "delta" points go through the staging area into
// trajectory reconstruction and loading in the moving-object store.
// Per-slide timings of every stage are collected for the performance
// experiments.
package core

import (
	"cmp"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/rtec"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

// Config assembles the system configuration.
type Config struct {
	// Window is the sliding window driving both trajectory detection and
	// CE recognition (ω and β).
	Window stream.WindowSpec
	// Tracker holds the mobility tracking parameters (paper Table 3).
	Tracker tracker.Params
	// Recognition configures the CE module; its Window defaults to the
	// system window range.
	Recognition maritime.Config
	// Processors splits CE recognition geographically across this many
	// parallel recognizers (the paper's §5.2 distributed setting: "One
	// may further distribute CE recognition by dividing further the
	// monitored area"). 0 or 1 runs a single recognizer.
	Processors int
	// TrackerShards splits mobility tracking across this many vessel
	// shards driven concurrently per slide (trajectory detection is
	// independent per vessel, §5.2). 0 picks one shard per CPU; 1 runs
	// the exact single-threaded tracker. Output is byte-identical across
	// shard counts.
	TrackerShards int
	// WatchdogTimeout bounds one slide's CE recognition: a recognizer
	// that exceeds it is flagged as wedged and abandoned — its events are
	// dropped (counted in Health) and the slide completes with whatever
	// the healthy recognizers produced, instead of hanging the pipeline.
	// 0 disables the watchdog.
	WatchdogTimeout time.Duration
	// DisableRecognition turns the CE module off, for experiments that
	// time trajectory detection alone.
	DisableRecognition bool
	// DisableArchival turns staging/reconstruction/loading off, for
	// experiments that time online processing alone.
	DisableArchival bool
	// SelfHeal arms the supervision layer: panics in tracker shard
	// workers, the recognizer fan-out and the archival path are recovered
	// into quarantined targets instead of crashing the process,
	// per-target journals are kept, and Heal re-admits a quarantined
	// target by restore-then-replay. Watchdog-wedged recognizers become
	// repairable instead of terminally abandoned.
	SelfHeal bool
	// JournalSlides is the re-base cadence of the self-heal journals
	// (default tracker.DefaultJournalSlides). Larger values keep more
	// replayable history per target at more memory; the retention cap is
	// eight cadences.
	JournalSlides int
	// Degrade configures the overload degradation ladder (see
	// DegradeSpec); nil disables it.
	Degrade *DegradeSpec
	// Analytics arms the cross-vessel analytics tier (rendezvous, dark
	// gap linking, CPA collision screening) over each slide's merged
	// critical points; nil disables it. Ignored when DisableRecognition
	// is set — in a cluster the workers disable recognition and the
	// coordinator runs the tier post-merge, so pairwise events stay
	// byte-identical with a single-process run.
	Analytics *analytics.Config
}

// Timings breaks one slide's processing cost into the stages of the
// paper's Figure 10 plus CE recognition.
type Timings struct {
	Tracking       time.Duration // window update + trajectory event detection
	Staging        time.Duration // delta points into the staging area
	Reconstruction time.Duration // trip segmentation
	Loading        time.Duration // inserting trips into the store
	Recognition    time.Duration // RTEC query step
	Analytics      time.Duration // cross-vessel pairwise screening
}

// Total returns the summed stage costs.
func (t Timings) Total() time.Duration {
	return t.Tracking + t.Staging + t.Reconstruction + t.Loading + t.Recognition + t.Analytics
}

// SlideReport is the outcome of processing one window slide.
type SlideReport struct {
	Query          time.Time
	FixesIn        int
	CriticalPoints int
	TripsCompleted int
	Alerts         []maritime.Alert
	Timings        Timings
	// Health is the degradation snapshot as of this slide (cumulative
	// counters, not per-slide deltas).
	Health Health
}

// System is the assembled pipeline.
type System struct {
	cfg        Config
	tracker    *tracker.Sharded
	recognizer *maritime.Recognizer
	factGen    *maritime.FactGenerator
	store      *mod.MOD
	analytics  *analytics.Tier

	// Partitioned recognition (Processors > 1): one recognizer per
	// longitude band, fed the events of vessels inside its band.
	partitions []*partition
	// areaOwner maps area ID → owning partition index; built once with
	// the partitions so the per-slide fact routing needs no map rebuild.
	areaOwner map[string]int

	// Per-slide scratch for advancePartitions, reused across slides so
	// the partitioned fan-out does not allocate per slide. (The alerts
	// slice is NOT scratch: sinks and the gateway retain it.)
	evByPart   [][]rtec.Event
	factByPart [][]maritime.SpatialFact
	launched   []bool
	completed  []bool
	snaps      []maritime.Snapshot

	// meScratch backs the slide's movement-event stream on the plain
	// single-recognizer path (no watchdog, no self-heal). With a
	// watchdog an abandoned Advance goroutine may still hold the slice,
	// so those paths allocate per slide instead of reusing it.
	meScratch []rtec.Event

	// Registered alert consumers, notified after every slide.
	sinks []AlertSink

	// freshObs, when set, receives every slide's fresh critical points
	// before recognition — the tap a cluster worker uses to ship its
	// slice's trajectory events upstream. The slice is only valid for
	// the duration of the call; observers must copy what they keep.
	freshObs func(q time.Time, fresh []tracker.CriticalPoint)

	// Optional metrics wiring (RegisterMetrics); nil leaves the hot path
	// untouched.
	metrics *pipelineMetrics

	// Degradation state (see Health): watchdog bookkeeping and the
	// drivers' ingest-side health contributions. The counters are
	// atomics because Health() is scraped from HTTP goroutines
	// (/healthz, /metrics) while the pipeline goroutine mutates them
	// mid-slide.
	healthSources      []func() Health
	watchdogTrips      atomic.Int64
	watchdogLostEvents atomic.Int64
	// singleDown is the unpartitioned recognizer's down-state (partUp /
	// partStalled / partPanicked / partFailed); singleInfo describes the
	// quarantine while it is down.
	singleDown atomic.Int32
	singleInfo supervise.Quarantine

	// Self-healing supervision (Config.SelfHeal); see heal.go. The
	// static world knowledge is retained so repairs can build fresh
	// recognizers/stores; journals keep each target's recent input
	// slides for restore-then-replay.
	selfHeal     bool
	journalEvery int
	journalCap   int
	vessels      []maritime.Vessel
	areas        []maritime.Area
	ports        []mod.PortArea
	recJ         []recJournal
	storeJ       *storeJournal
	storeDown    atomic.Int32
	storeInfo    supervise.Quarantine
	// recovered holds alerts reconstructed by a Heal replay, delivered
	// (sorted in) with the next slide's report.
	recovered       []maritime.Alert
	panicsRecovered atomic.Int64
	restores        atomic.Int64
	journalGaps     atomic.Int64
	degradedDrops   atomic.Int64
	storeHook       atomic.Pointer[func()]

	// Overload degradation ladder (Config.Degrade); see degrade.go.
	degrader *degrader

	// runMu serializes the pipeline's state-mutating entry points
	// (ProcessBatch, Drain, Snapshot, RestoreSnapshot, Heal, Abandon) so
	// a supervisor may repair targets while the stream keeps sliding.
	// onSlideEnd callbacks run after each slide OUTSIDE the lock.
	runMu      sync.Mutex
	onSlideEnd []func(SlideReport)
}

// partition is one geographic slice of the monitored region.
type partition struct {
	rec   *maritime.Recognizer
	areas []maritime.Area
	loLon float64 // inclusive lower longitude bound (-Inf for first)
	hiLon float64 // exclusive upper bound (+Inf for last)
	// down marks a partition out of service (partStalled: abandoned by
	// the watchdog, its goroutine may still be running; partPanicked:
	// panic recovered; partFailed: given up). It must never be advanced
	// while down. Atomic because concurrent Health scrapes read it; info
	// describes the quarantine and is guarded by runMu.
	down atomic.Int32
	info supervise.Quarantine
}

// NewSystem wires the pipeline over the given static knowledge. vessels
// and areas feed CE recognition; ports feed trip segmentation.
func NewSystem(cfg Config, vessels []maritime.Vessel, areas []maritime.Area, ports []mod.PortArea) *System {
	if cfg.Recognition.Window <= 0 {
		cfg.Recognition.Window = cfg.Window.Range
	}
	shards := cfg.TrackerShards
	if shards == 0 {
		shards = tracker.DefaultShards()
	}
	s := &System{
		cfg:     cfg,
		tracker: tracker.NewSharded(cfg.Tracker, cfg.Window, shards),
		store:   mod.New(ports),
	}
	if !cfg.DisableRecognition {
		if cfg.Processors > 1 {
			s.buildPartitions(vessels, areas)
		}
		if len(s.partitions) == 0 {
			// Either a single-processor run, or nothing to partition on
			// (no areas): fall back to one recognizer rather than silently
			// dropping recognition.
			s.recognizer = maritime.NewRecognizer(cfg.Recognition, vessels, areas)
		}
		if cfg.Recognition.Mode == maritime.SpatialFacts {
			s.factGen = maritime.NewFactGenerator(areas, closeMetersOf(cfg.Recognition))
			s.factGen.SetParallelism(s.tracker.Shards())
		}
	}
	if cfg.Analytics != nil && !cfg.DisableRecognition {
		s.analytics = analytics.New(*cfg.Analytics, PortPolys(ports))
	}
	if cfg.Degrade != nil {
		s.degrader = newDegrader(*cfg.Degrade)
	}
	if cfg.SelfHeal {
		s.initSelfHeal(vessels, areas, ports)
	}
	return s
}

// Close releases the tracker's shard worker pool. Systems are also
// reclaimed by a finalizer, so Close is optional but prompt.
func (s *System) Close() { s.tracker.Close() }

// buildPartitions splits the areas into Processors longitude bands of
// roughly equal area count and builds one recognizer per band.
func (s *System) buildPartitions(vessels []maritime.Vessel, areas []maritime.Area) {
	n := s.cfg.Processors
	sorted := append([]maritime.Area(nil), areas...)
	slices.SortFunc(sorted, func(a, b maritime.Area) int {
		return cmp.Compare(a.Poly.Centroid().Lon, b.Poly.Centroid().Lon)
	})
	per := (len(sorted) + n - 1) / n
	if per < 1 {
		per = 1
	}
	lo := math.Inf(-1)
	for i := 0; i < len(sorted); i += per {
		hi := i + per
		if hi > len(sorted) {
			hi = len(sorted)
		}
		band := sorted[i:hi]
		upper := math.Inf(1)
		if hi < len(sorted) {
			// Split halfway between adjacent band centroids.
			upper = (band[len(band)-1].Poly.Centroid().Lon +
				sorted[hi].Poly.Centroid().Lon) / 2
		}
		s.partitions = append(s.partitions, &partition{
			rec:   maritime.NewRecognizer(s.cfg.Recognition, vessels, band),
			areas: band,
			loLon: lo,
			hiLon: upper,
		})
		lo = upper
	}
	// Area ownership and the per-slide fan-out scratch are fixed for the
	// system's lifetime; build them once here instead of per slide.
	s.areaOwner = make(map[string]int)
	for i, p := range s.partitions {
		for _, a := range p.areas {
			s.areaOwner[a.ID] = i
		}
	}
	np := len(s.partitions)
	s.evByPart = make([][]rtec.Event, np)
	s.factByPart = make([][]maritime.SpatialFact, np)
	s.launched = make([]bool, np)
	s.completed = make([]bool, np)
	s.snaps = make([]maritime.Snapshot, np)
}

// closeMetersOf resolves the effective close/3 threshold.
func closeMetersOf(cfg maritime.Config) float64 {
	if cfg.CloseMeters > 0 {
		return cfg.CloseMeters
	}
	return 3000
}

// SetFreshObserver installs a tap receiving each slide's fresh critical
// points right after trajectory detection, before recognition. A
// cluster worker uses it to stream its vessel slice's events to the
// coordinator. The slice passed to fn is tracker-owned scratch, valid
// only for the duration of the call. Must be set before processing
// starts; it is not guarded by runMu.
func (s *System) SetFreshObserver(fn func(q time.Time, fresh []tracker.CriticalPoint)) {
	s.freshObs = fn
}

// Tracker exposes the trajectory detection component.
func (s *System) Tracker() *tracker.Sharded { return s.tracker }

// Recognizer exposes the CE recognition component (nil when disabled).
func (s *System) Recognizer() *maritime.Recognizer { return s.recognizer }

// Store exposes the moving-object store.
func (s *System) Store() *mod.MOD { return s.store }

// Analytics exposes the cross-vessel analytics tier (nil when disabled).
func (s *System) Analytics() *analytics.Tier { return s.analytics }

// PortPolys extracts the port polygons the analytics tier uses to
// suppress in-harbor rendezvous pairs.
func PortPolys(ports []mod.PortArea) []*geo.Polygon {
	out := make([]*geo.Polygon, 0, len(ports))
	for _, p := range ports {
		out = append(out, p.Poly)
	}
	return out
}

// ProcessBatch runs one window slide through the full pipeline and
// reports what happened, with per-stage timings. Slides are serialized
// with the other state-mutating entry points (Snapshot, Heal, ...);
// OnSlideEnd callbacks run after the slide, outside the lock.
func (s *System) ProcessBatch(b stream.Batch) SlideReport {
	s.runMu.Lock()
	rep := s.processLocked(b)
	cbs := s.onSlideEnd
	s.runMu.Unlock()
	for _, fn := range cbs {
		fn(rep)
	}
	return rep
}

func (s *System) processLocked(b stream.Batch) SlideReport {
	rep := SlideReport{Query: b.Query, FixesIn: b.Len()}
	level := DegradeNone
	if s.degrader != nil {
		level = s.degrader.Level()
	}
	// Alerts reconstructed by a Heal replay since the last slide are
	// delivered with this one.
	recovered := s.recovered
	s.recovered = nil

	t := time.Now()
	res := s.tracker.Slide(b)
	rep.Timings.Tracking = time.Since(t)
	rep.CriticalPoints = len(res.Fresh)
	if s.freshObs != nil {
		s.freshObs(b.Query, res.Fresh)
	}

	if !s.cfg.DisableArchival {
		// At DegradeDeferArchival and above, staging continues (nothing
		// is lost) but reconstruction+loading are deferred to a healthier
		// slide or the final drain.
		doReconstruct := level < DegradeDeferArchival
		if s.storeJ != nil {
			s.journalStore(res.Delta, doReconstruct)
		}
		if s.storeDown.Load() == partUp {
			s.runArchival(&rep, res.Delta, doReconstruct)
		}
	}

	if s.recognizer != nil || len(s.partitions) > 0 {
		var events []rtec.Event
		if s.recognizer != nil && s.cfg.WatchdogTimeout <= 0 && !s.selfHeal {
			s.meScratch = maritime.MEStreamInto(s.meScratch[:0], res.Fresh)
			events = s.meScratch
		} else {
			events = maritime.MEStream(res.Fresh)
		}
		if level >= DegradeInstantaneousOnly {
			events = s.filterInstantaneous(events)
		}
		var facts []maritime.SpatialFact
		if s.factGen != nil {
			facts = s.factGen.Facts(events)
		}
		t = time.Now()
		if s.recognizer != nil {
			rep.Alerts = s.advanceSingle(b.Query, events, facts)
		} else {
			rep.Alerts = s.advancePartitions(b.Query, events, facts)
		}
		rep.Timings.Recognition = time.Since(t)
	}
	if s.analytics != nil {
		t = time.Now()
		pair := s.analytics.Slide(b.Query, res.Fresh)
		rep.Timings.Analytics = time.Since(t)
		if len(pair) > 0 {
			// Recognition alerts are already in canonical order; append
			// the pairwise ones and stable re-sort so ties keep their
			// emission order on both the single-process and cluster paths.
			rep.Alerts = append(rep.Alerts, pair...)
			slices.SortStableFunc(rep.Alerts, maritime.CompareAlerts)
		}
	}
	if len(recovered) > 0 {
		merged := make([]maritime.Alert, 0, len(recovered)+len(rep.Alerts))
		merged = append(merged, recovered...)
		merged = append(merged, rep.Alerts...)
		slices.SortStableFunc(merged, maritime.CompareAlerts)
		rep.Alerts = merged
	}
	s.rebaseJournals()
	if s.degrader != nil {
		s.degradeStep(rep.Timings.Total())
	}
	rep.Health = s.Health()
	if s.metrics != nil {
		s.metrics.observe(rep)
	}
	s.notifySinks(rep)
	return rep
}

// runArchival stages the slide's delta points and (unless deferred by
// the degradation ladder) reconstructs and loads trips. With SelfHeal a
// panic anywhere in the archival path quarantines the store instead of
// crashing; the journal replays the missed slides on Heal.
func (s *System) runArchival(rep *SlideReport, delta []tracker.CriticalPoint, doReconstruct bool) {
	if s.selfHeal {
		defer func() {
			if r := recover(); r != nil {
				s.quarantineStore(newQuarantine("store", r))
			}
		}()
	}
	if h := s.storeHook.Load(); h != nil {
		(*h)()
	}
	t := time.Now()
	s.store.Stage(delta)
	rep.Timings.Staging = time.Since(t)
	if !doReconstruct {
		return
	}
	t = time.Now()
	trips := s.store.Reconstruct()
	rep.Timings.Reconstruction = time.Since(t)

	t = time.Now()
	s.store.Load(trips)
	rep.Timings.Loading = time.Since(t)
	rep.TripsCompleted = len(trips)
}

// advanceSingle runs the lone recognizer, under the watchdog when one
// is configured. With SelfHeal the slide's input is journaled first and
// a panic inside Advance quarantines the recognizer instead of
// crashing.
func (s *System) advanceSingle(q time.Time, events []rtec.Event, facts []maritime.SpatialFact) []maritime.Alert {
	if s.recJ != nil {
		s.journalRec(0, q, events, facts)
	}
	if s.singleDown.Load() != partUp {
		s.watchdogLostEvents.Add(int64(len(events)))
		return nil
	}
	// Heal may replace s.recognizer between slides; pin the object this
	// slide runs against so an abandoned goroutine never reads the field
	// concurrently with a repair.
	rec := s.recognizer
	if s.cfg.WatchdogTimeout <= 0 && !s.selfHeal {
		return rec.Advance(q, events, facts).Alerts
	}
	type advResult struct {
		snap maritime.Snapshot
		qr   *supervise.Quarantine
	}
	done := make(chan advResult, 1)
	advance := func() (out advResult) {
		if s.selfHeal {
			defer func() {
				if r := recover(); r != nil {
					qr := newQuarantine("recognizer", r)
					out = advResult{qr: &qr}
				}
			}()
		}
		if h := recognizerAdvanceHook.Load(); h != nil {
			(*h)(-1)
		}
		return advResult{snap: rec.Advance(q, events, facts)}
	}
	if s.cfg.WatchdogTimeout <= 0 {
		// Self-heal without a watchdog: run in place, recovering panics.
		r := advance()
		if r.qr != nil {
			s.quarantineSingle(partPanicked, *r.qr, len(events))
			return nil
		}
		return r.snap.Alerts
	}
	go func() { done <- advance() }()
	timer := time.NewTimer(s.cfg.WatchdogTimeout)
	defer timer.Stop()
	deliver := func(r advResult) []maritime.Alert {
		if r.qr != nil {
			s.quarantineSingle(partPanicked, *r.qr, len(events))
			return nil
		}
		return r.snap.Alerts
	}
	select {
	case r := <-done:
		return deliver(r)
	case <-timer.C:
		// The result can race the deadline into the select; prefer a
		// delivery that beat the deadline over declaring a wedge.
		select {
		case r := <-done:
			return deliver(r)
		default:
		}
		// The recognizer overran the slide budget; abandon it (the
		// goroutine may still be running against its private state, so it
		// must never be advanced again) and keep the pipeline moving.
		// With SelfHeal the quarantine is repairable: Heal rebuilds a
		// fresh recognizer from the journal and re-admits it.
		s.quarantineSingle(partStalled, stallQuarantine("recognizer"), len(events))
		s.watchdogTrips.Add(1)
		return nil
	}
}

// recognizerAdvanceHook is called at the start of every recognition
// goroutine with the partition index (-1 for the single recognizer);
// tests install a blocking hook to simulate a wedged recognizer. It is
// atomic because abandoned goroutines may still read it while a test
// tears it down.
var recognizerAdvanceHook atomic.Pointer[func(i int)]

// advancePartitions fans the slide's events out to the recognizer of
// the band each vessel is in and runs all bands in parallel (the MEs
// are "forwarded to the appropriate processor according to vessel
// location", paper §5.2).
func (s *System) advancePartitions(q time.Time, events []rtec.Event, facts []maritime.SpatialFact) []maritime.Alert {
	n := len(s.partitions)
	// The routing slots are system-owned scratch reused across slides. A
	// down partition's slot is abandoned to its goroutine at quarantine
	// time (set to nil, never appended to again), so a goroutine that
	// still holds an old slice sees a stable array.
	for i := range s.evByPart {
		s.evByPart[i] = s.evByPart[i][:0]
		s.factByPart[i] = s.factByPart[i][:0]
	}
	for _, ev := range events {
		i := s.partitionOf(ev.Lon)
		if s.partitions[i].down.Load() != partUp {
			s.watchdogLostEvents.Add(1)
			if !s.selfHeal {
				continue
			}
			// The journal still needs the event: a Heal replay delivers
			// the quarantine window's alerts as recovered.
		}
		s.evByPart[i] = append(s.evByPart[i], ev)
	}
	for _, f := range facts {
		if i, ok := s.areaOwner[f.AreaID]; ok {
			if s.partitions[i].down.Load() != partUp && !s.selfHeal {
				continue
			}
			s.factByPart[i] = append(s.factByPart[i], f)
		}
	}
	if s.recJ != nil {
		for i := range s.partitions {
			s.journalRec(i, q, s.evByPart[i], s.factByPart[i])
		}
	}
	// Fan out to the live partitions. Results come back over a buffered
	// channel rather than shared slots so that a goroutine abandoned by
	// the watchdog can still complete without racing a later slide; the
	// channel itself is per-slide for the same reason. Each goroutine
	// takes its event/fact slices by value at launch so later slides may
	// reslice the scratch slots freely. With SelfHeal a panicking
	// goroutine reports a quarantine record instead of crashing.
	type partResult struct {
		i    int
		snap maritime.Snapshot
		qr   *supervise.Quarantine
	}
	results := make(chan partResult, n)
	active := 0
	for i, p := range s.partitions {
		s.launched[i] = false
		s.completed[i] = false
		if p.down.Load() != partUp {
			continue
		}
		s.launched[i] = true
		active++
		go func(i int, rec *maritime.Recognizer, evs []rtec.Event, fs []maritime.SpatialFact) {
			if s.selfHeal {
				defer func() {
					if r := recover(); r != nil {
						qr := newQuarantine(s.recTarget(i), r)
						results <- partResult{i: i, qr: &qr}
					}
				}()
			}
			if h := recognizerAdvanceHook.Load(); h != nil {
				(*h)(i)
			}
			results <- partResult{i: i, snap: rec.Advance(q, evs, fs)}
		}(i, p.rec, s.evByPart[i], s.factByPart[i])
	}
	var timeout <-chan time.Time
	if s.cfg.WatchdogTimeout > 0 {
		timer := time.NewTimer(s.cfg.WatchdogTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	collect := func(r partResult) {
		if r.qr != nil {
			s.quarantinePartition(r.i, partPanicked, *r.qr)
			return
		}
		s.snaps[r.i] = r.snap
		s.completed[r.i] = true
	}
	for got := 0; got < active; {
		select {
		case r := <-results:
			collect(r)
			got++
		case <-timeout:
			// A result can race the deadline into the select: when the
			// pipeline goroutine is scheduled late, both channels are
			// ready and select picks either. Drain deliveries that beat
			// the deadline before declaring anyone a straggler — a
			// partition that answered in time is not wedged.
			for draining := true; draining && got < active; {
				select {
				case r := <-results:
					collect(r)
					got++
				default:
					draining = false
				}
			}
			if got == active {
				break
			}
			// The slide budget is spent: flag every straggler as wedged
			// and move on with the snapshots that did arrive. With
			// SelfHeal the quarantine is repairable via Heal.
			s.watchdogTrips.Add(1)
			for i, p := range s.partitions {
				if s.launched[i] && !s.completed[i] && p.down.Load() == partUp {
					s.quarantinePartition(i, partStalled, stallQuarantine(s.recTarget(i)))
				}
			}
			got = active
		}
	}
	var alerts []maritime.Alert
	for i := range s.snaps {
		if s.completed[i] {
			alerts = append(alerts, s.snaps[i].Alerts...)
		}
	}
	slices.SortStableFunc(alerts, maritime.CompareAlerts)
	return alerts
}

// partitionOf returns the index of the band owning longitude lon.
func (s *System) partitionOf(lon float64) int {
	for i, p := range s.partitions {
		if lon < p.hiLon {
			return i
		}
	}
	return len(s.partitions) - 1
}

// Drain stages whatever is left in the tracker's window into the store
// and reconstructs, for end-of-stream statistics (the paper computes
// Table 4 "after the input stream was exhausted"). It advances the
// window far past the last query time so every synopsis expires.
func (s *System) Drain(last time.Time) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	res := s.tracker.Slide(stream.Batch{Query: last.Add(10 * s.cfg.Window.Range)})
	if s.cfg.DisableArchival {
		return
	}
	// The drain always reconstructs, regardless of the degradation
	// ladder: end-of-stream statistics must cover the whole stream.
	if s.storeJ != nil {
		s.journalStore(res.Delta, true)
	}
	if s.storeDown.Load() != partUp {
		return
	}
	var rep SlideReport
	s.runArchival(&rep, res.Delta, true)
}

// RunAll replays an entire batched stream through the system, returning
// every slide report. It is the offline driver used by the examples and
// the experiment harness.
func (s *System) RunAll(batches interface{ Next() (stream.Batch, bool) }) []SlideReport {
	var reports []SlideReport
	var last time.Time
	for {
		b, ok := batches.Next()
		if !ok {
			break
		}
		reports = append(reports, s.ProcessBatch(b))
		last = b.Query
	}
	if !last.IsZero() {
		s.Drain(last)
	}
	return reports
}

// RecognizerIntervals returns the maximal intervals of a durative CE
// for an area as of the last slide, or nil when recognition is off.
func (s *System) RecognizerIntervals(ce, areaID string) rtec.IntervalList {
	key := rtec.FluentKey{Fluent: ce, Entity: areaID, Value: rtec.True}
	if s.recognizer != nil {
		return s.recognizer.Engine().HoldsFor(key)
	}
	for _, p := range s.partitions {
		if ivs := p.rec.Engine().HoldsFor(key); ivs != nil {
			return ivs
		}
	}
	return nil
}
