package core

import (
	"repro/internal/obs"
)

// pipelineMetrics is the pipeline's push-side instrumentation: the
// per-stage slide histograms of the paper's Figure 10/11 breakdown plus
// throughput counters, observed once per ProcessBatch.
type pipelineMetrics struct {
	reg *obs.Registry

	tracking       *obs.Histogram
	staging        *obs.Histogram
	reconstruction *obs.Histogram
	loading        *obs.Histogram
	recognition    *obs.Histogram
	total          *obs.Histogram

	slides   *obs.Counter
	fixes    *obs.Counter
	critical *obs.Counter
	trips    *obs.Counter
}

// RegisterMetrics wires the system's runtime metrics onto the registry:
// per-stage slide latency histograms, fixes/critical-point/trip/alert
// counters, and the watchdog health counters (sampled from the same
// atomics Health reads). Call it during setup, before the pipeline
// starts sliding; the watchdog metrics stay correct under concurrent
// scrapes because they read only atomics.
func (s *System) RegisterMetrics(r *obs.Registry) {
	stageHelp := "Per-slide cost of one pipeline stage, in seconds (the paper's Fig. 10 maintenance / Fig. 11 recognition breakdown)."
	stage := func(name string) *obs.Histogram {
		return r.Histogram("maritime_slide_stage_seconds", stageHelp, obs.Labels{"stage": name}, nil)
	}
	s.metrics = &pipelineMetrics{
		reg:            r,
		tracking:       stage("tracking"),
		staging:        stage("staging"),
		reconstruction: stage("reconstruction"),
		loading:        stage("loading"),
		recognition:    stage("recognition"),
		total:          stage("total"),
		slides:         r.Counter("maritime_slides_total", "Window slides processed.", nil),
		fixes:          r.Counter("maritime_fixes_total", "Position fixes entering the window.", nil),
		critical:       r.Counter("maritime_critical_points_total", "Critical points emitted by the mobility tracker.", nil),
		trips:          r.Counter("maritime_trips_completed_total", "Trips reconstructed and loaded into the store.", nil),
	}
	r.CounterFunc("maritime_watchdog_trips_total",
		"Slides on which CE recognition exceeded its budget and was abandoned.", nil,
		func() float64 { return float64(s.watchdogTrips.Load()) })
	r.CounterFunc("maritime_watchdog_lost_events_total",
		"Events dropped because their recognizer was wedged.", nil,
		func() float64 { return float64(s.watchdogLostEvents.Load()) })
	r.GaugeFunc("maritime_wedged_partitions",
		"Recognizer partitions currently out of service after a watchdog trip.", nil,
		func() float64 { return float64(s.wedgedCount()) })
	s.tracker.RegisterMetrics(r)
}

// observe records one slide's outcome. Alerts count per CE so the
// export matches the per-pattern recognition-cost breakdown of the
// maritime CER literature.
func (m *pipelineMetrics) observe(rep SlideReport) {
	m.tracking.ObserveDuration(rep.Timings.Tracking)
	m.staging.ObserveDuration(rep.Timings.Staging)
	m.reconstruction.ObserveDuration(rep.Timings.Reconstruction)
	m.loading.ObserveDuration(rep.Timings.Loading)
	m.recognition.ObserveDuration(rep.Timings.Recognition)
	m.total.ObserveDuration(rep.Timings.Total())
	m.slides.Inc()
	m.fixes.Add(uint64(rep.FixesIn))
	m.critical.Add(uint64(rep.CriticalPoints))
	m.trips.Add(uint64(rep.TripsCompleted))
	for _, a := range rep.Alerts {
		m.reg.Counter("maritime_alerts_total", "Complex events recognized, by CE pattern.",
			obs.Labels{"ce": a.CE}).Inc()
	}
}
