package core

import (
	"repro/internal/obs"
)

// pipelineMetrics is the pipeline's push-side instrumentation: the
// per-stage slide histograms of the paper's Figure 10/11 breakdown plus
// throughput counters, observed once per ProcessBatch.
type pipelineMetrics struct {
	reg *obs.Registry

	tracking       *obs.Histogram
	staging        *obs.Histogram
	reconstruction *obs.Histogram
	loading        *obs.Histogram
	recognition    *obs.Histogram
	total          *obs.Histogram

	slides   *obs.Counter
	fixes    *obs.Counter
	critical *obs.Counter
	trips    *obs.Counter
}

// RegisterMetrics wires the system's runtime metrics onto the registry:
// per-stage slide latency histograms, fixes/critical-point/trip/alert
// counters, and the watchdog health counters (sampled from the same
// atomics Health reads). Call it during setup, before the pipeline
// starts sliding; the watchdog metrics stay correct under concurrent
// scrapes because they read only atomics.
func (s *System) RegisterMetrics(r *obs.Registry) {
	stageHelp := "Per-slide cost of one pipeline stage, in seconds (the paper's Fig. 10 maintenance / Fig. 11 recognition breakdown)."
	stage := func(name string) *obs.Histogram {
		return r.Histogram("maritime_slide_stage_seconds", stageHelp, obs.Labels{"stage": name}, nil)
	}
	s.metrics = &pipelineMetrics{
		reg:            r,
		tracking:       stage("tracking"),
		staging:        stage("staging"),
		reconstruction: stage("reconstruction"),
		loading:        stage("loading"),
		recognition:    stage("recognition"),
		total:          stage("total"),
		slides:         r.Counter("maritime_slides_total", "Window slides processed.", nil),
		fixes:          r.Counter("maritime_fixes_total", "Position fixes entering the window.", nil),
		critical:       r.Counter("maritime_critical_points_total", "Critical points emitted by the mobility tracker.", nil),
		trips:          r.Counter("maritime_trips_completed_total", "Trips reconstructed and loaded into the store.", nil),
	}
	r.CounterFunc("maritime_watchdog_trips_total",
		"Slides on which CE recognition exceeded its budget and was abandoned.", nil,
		func() float64 { return float64(s.watchdogTrips.Load()) })
	r.CounterFunc("maritime_watchdog_lost_events_total",
		"Events dropped because their recognizer was wedged.", nil,
		func() float64 { return float64(s.watchdogLostEvents.Load()) })
	r.GaugeFunc("maritime_wedged_partitions",
		"Recognizer partitions currently out of service after a watchdog trip.", nil,
		func() float64 { return float64(s.wedgedCount()) })
	r.CounterFunc("maritime_panics_recovered_total",
		"Panics in the recognizer fan-out or archival path converted into quarantines instead of crashes.", nil,
		func() float64 { return float64(s.panicsRecovered.Load()) })
	r.GaugeFunc("maritime_quarantined_targets",
		"Recognizers and store currently quarantined, awaiting restore-then-replay (tracker shards are counted by maritime_tracker_shards_quarantined).", nil,
		func() float64 { q, _ := s.downCounts(); return float64(q) })
	r.GaugeFunc("maritime_failed_targets",
		"Recognizers and store the supervisor gave up on; out of service until a snapshot restore.", nil,
		func() float64 { _, f := s.downCounts(); return float64(f) })
	r.CounterFunc("maritime_restores_total",
		"Completed quarantine-restore-replay-readmit cycles on recognizers and the store.", nil,
		func() float64 { return float64(s.restores.Load()) })
	r.CounterFunc("maritime_journal_gap_slides_total",
		"Self-heal journal slides discarded by the retention cap (lost to replay, accounted in Health.ReplayGapSlides).", nil,
		func() float64 { return float64(s.journalGaps.Load()) })
	r.GaugeFunc("maritime_degradation_level",
		"Current rung of the overload degradation ladder (0 = full pipeline).", nil,
		func() float64 { return float64(s.DegradationLevel()) })
	r.CounterFunc("maritime_degradation_transitions_total",
		"Transitions of the overload degradation ladder, in either direction.", nil,
		func() float64 {
			if s.degrader == nil {
				return 0
			}
			return float64(s.degrader.transitions.Load())
		})
	r.CounterFunc("maritime_degraded_dropped_events_total",
		"Durative movement events dropped while recognition ran instantaneous-only.", nil,
		func() float64 { return float64(s.degradedDrops.Load()) })
	s.tracker.RegisterMetrics(r)
}

// observe records one slide's outcome. Alerts count per CE so the
// export matches the per-pattern recognition-cost breakdown of the
// maritime CER literature.
func (m *pipelineMetrics) observe(rep SlideReport) {
	m.tracking.ObserveDuration(rep.Timings.Tracking)
	m.staging.ObserveDuration(rep.Timings.Staging)
	m.reconstruction.ObserveDuration(rep.Timings.Reconstruction)
	m.loading.ObserveDuration(rep.Timings.Loading)
	m.recognition.ObserveDuration(rep.Timings.Recognition)
	m.total.ObserveDuration(rep.Timings.Total())
	m.slides.Inc()
	m.fixes.Add(uint64(rep.FixesIn))
	m.critical.Add(uint64(rep.CriticalPoints))
	m.trips.Add(uint64(rep.TripsCompleted))
	for _, a := range rep.Alerts {
		m.reg.Counter("maritime_alerts_total", "Complex events recognized, by CE pattern.",
			obs.Labels{"ce": a.CE}).Inc()
	}
}
