package core

import (
	"testing"
	"time"

	"repro/internal/fleetsim"
	"repro/internal/stream"
)

// TestProcessorsWithoutAreasFallsBack is the regression test for the
// silent-recognition-loss bug: Processors > 1 with an empty areas slice
// used to build zero partitions, making recognition disappear (and
// partitionOf index -1). The system must fall back to a single
// recognizer instead.
func TestProcessorsWithoutAreasFallsBack(t *testing.T) {
	cfg := defaultSystemConfig()
	cfg.Processors = 4
	sim := fleetsim.NewSimulator(simConfig(60, 2))
	fixes := sim.Run()
	vessels, _, ports := AdaptWorld(sim)
	sys := NewSystem(cfg, vessels, nil /* no areas */, ports)
	if sys.Recognizer() == nil {
		t.Fatal("no recognizer with Processors=4 and no areas: recognition silently disabled")
	}
	// The slide must process without panicking and still run the CE
	// engine (area-less CEs like fast approaches need no polygons).
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), cfg.Window.Slide)
	reports := sys.RunAll(batcher)
	if len(reports) == 0 {
		t.Fatal("no slides processed")
	}
}

// wedgeableConfig builds a partitioned system with a short watchdog.
func wedgeableConfig(timeout time.Duration) Config {
	cfg := defaultSystemConfig()
	cfg.Processors = 2
	cfg.WatchdogTimeout = timeout
	return cfg
}

// TestWatchdogSkipsWedgedPartition wedges one partition's recognizer
// and checks the slide completes within the budget, the healthy
// partition's alerts survive, and later slides skip the wedged one.
func TestWatchdogSkipsWedgedPartition(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	calls := make(chan int, 64)
	hook := func(i int) {
		calls <- i
		if i == 0 {
			<-release // partition 0 is wedged until the test ends
		}
	}
	recognizerAdvanceHook.Store(&hook)
	defer recognizerAdvanceHook.Store(nil)

	sim := fleetsim.NewSimulator(simConfig(150, 3))
	fixes := sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(wedgeableConfig(200*time.Millisecond), vessels, areas, ports)

	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	start := time.Now()
	var reports []SlideReport
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		slideStart := time.Now()
		reports = append(reports, sys.ProcessBatch(b))
		if d := time.Since(slideStart); d > 5*time.Second {
			t.Fatalf("slide took %v despite a 200ms watchdog: the wedged partition hung the pipeline", d)
		}
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("run took %v, watchdog is not bounding slides", time.Since(start))
	}

	h := sys.Health()
	if h.WatchdogTrips != 1 {
		t.Errorf("WatchdogTrips = %d, want exactly 1 (the partition is skipped afterwards)", h.WatchdogTrips)
	}
	if h.WedgedPartitions != 1 {
		t.Errorf("WedgedPartitions = %d, want 1", h.WedgedPartitions)
	}
	if h.DropsByCause["watchdog"] == 0 {
		t.Error("no events accounted as lost to the watchdog")
	}

	// Partition 0 must have been advanced exactly once (then abandoned);
	// partition 1 once per slide with traffic. Drain without closing:
	// the abandoned goroutine's send has no happens-before edge with
	// this goroutine, and close-vs-send is a race.
	perPart := map[int]int{}
	for len(calls) > 0 {
		perPart[<-calls]++
	}
	if perPart[0] != 1 {
		t.Errorf("wedged partition advanced %d times, want 1", perPart[0])
	}
	if perPart[1] < len(reports)/2 {
		t.Errorf("healthy partition advanced %d times over %d slides", perPart[1], len(reports))
	}

	// The healthy partition must still produce alerts.
	alerts := 0
	for _, r := range reports {
		alerts += len(r.Alerts)
	}
	if alerts == 0 {
		t.Error("no alerts from the healthy partition: degradation was total")
	}
	// Health rides along on slide reports.
	last := reports[len(reports)-1]
	if last.Health.WatchdogTrips != 1 {
		t.Errorf("SlideReport.Health.WatchdogTrips = %d, want 1", last.Health.WatchdogTrips)
	}
}

// TestWatchdogSingleRecognizer wedges the lone recognizer: recognition
// degrades to nothing, but the pipeline keeps sliding and the loss is
// accounted.
func TestWatchdogSingleRecognizer(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hook := func(i int) {
		if i == -1 {
			<-release
		}
	}
	recognizerAdvanceHook.Store(&hook)
	defer recognizerAdvanceHook.Store(nil)

	cfg := defaultSystemConfig()
	cfg.WatchdogTimeout = 100 * time.Millisecond
	sim := fleetsim.NewSimulator(simConfig(40, 2))
	fixes := sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(cfg, vessels, areas, ports)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	reports := sys.RunAll(batcher)
	if len(reports) == 0 {
		t.Fatal("no slides processed")
	}
	h := sys.Health()
	if h.WatchdogTrips != 1 || h.WedgedPartitions != 1 {
		t.Errorf("health = %+v, want 1 trip / 1 wedged", h)
	}
	for _, r := range reports {
		if len(r.Alerts) != 0 {
			t.Error("alerts produced by a wedged recognizer")
		}
	}
}

// TestHealthSources checks driver-contributed counters merge into the
// per-slide snapshots.
func TestHealthSources(t *testing.T) {
	cfg := defaultSystemConfig()
	sim := fleetsim.NewSimulator(simConfig(40, 2))
	fixes := sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(cfg, vessels, areas, ports)
	sys.AddHealthSource(func() Health {
		return Health{Reconnects: 3, Resumes: 2, IngestOverflow: 7,
			DropsByCause: map[string]int{"overflow": 7, "checksum": 1}}
	})
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	reports := sys.RunAll(batcher)
	h := reports[len(reports)-1].Health
	if h.Reconnects != 3 || h.Resumes != 2 || h.IngestOverflow != 7 {
		t.Errorf("driver counters lost in merge: %+v", h)
	}
	if h.DropsByCause["overflow"] != 7 || h.DropsByCause["checksum"] != 1 {
		t.Errorf("drop causes lost in merge: %+v", h.DropsByCause)
	}
	if h.TotalDropped() != 8 {
		t.Errorf("TotalDropped = %d, want 8", h.TotalDropped())
	}
	if got := h.String(); got == "" {
		t.Error("empty health summary")
	}
}
