package core

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleetsim"
	"repro/internal/obs"
	"repro/internal/stream"
)

// TestHealthScrapeConcurrentWithProcessBatch is the regression test for
// the watchdog-counter data race: Health() used to read plain ints that
// advancePartitions mutates mid-slide, so the first concurrent metrics
// scrape was undefined behavior. Run under -race (CI does) this fails
// loudly if the counters ever regress to unsynchronized fields. The
// hook wedges partition 0 so the run exercises the mutation paths —
// trips, lost events and wedged flags — while scrapers hammer Health.
func TestHealthScrapeConcurrentWithProcessBatch(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hook := func(i int) {
		if i == 0 {
			<-release
		}
	}
	recognizerAdvanceHook.Store(&hook)
	defer recognizerAdvanceHook.Store(nil)

	sim := fleetsim.NewSimulator(simConfig(100, 3))
	fixes := sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	// The budget must be generous: under -race on a small machine the
	// four busy-loop scrapers can starve the healthy partition's
	// goroutine for tens of milliseconds, and only the hook-blocked
	// partition may trip the watchdog.
	sys := NewSystem(wedgeableConfig(500*time.Millisecond), vessels, areas, ports)
	reg := obs.NewRegistry()
	sys.RegisterMetrics(reg)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := sys.Health()
				if h.WedgedPartitions < 0 {
					t.Error("negative wedged count")
					return
				}
				var b strings.Builder
				_ = reg.WriteText(&b)
			}
		}()
	}

	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		sys.ProcessBatch(b)
	}
	close(stop)
	scrapers.Wait()

	h := sys.Health()
	if h.WatchdogTrips != 1 || h.WedgedPartitions != 1 {
		t.Errorf("health after wedged run = %+v, want 1 trip / 1 wedged", h)
	}
}

// TestPartitionOfBoundaries pins the band-ownership rule: bounds are
// half-open [lo, hi), a longitude west of band 0 belongs to band 0
// (its lower bound is -Inf), a longitude exactly on a band edge belongs
// to the band east of it, and anything east of every finite bound falls
// back to the last band.
func TestPartitionOfBoundaries(t *testing.T) {
	s := &System{partitions: []*partition{
		{loLon: math.Inf(-1), hiLon: -5},
		{loLon: -5, hiLon: 10},
		{loLon: 10, hiLon: math.Inf(1)},
	}}
	cases := []struct {
		lon  float64
		want int
	}{
		{-180, 0}, // far west of band 0
		{-5.001, 0},
		{-5, 1}, // exactly on the first edge: east band owns it
		{0, 1},
		{10, 2}, // exactly on the second edge
		{179, 2},
		{math.Inf(1), 2}, // east of everything: fallback to last band
	}
	for _, tc := range cases {
		if got := s.partitionOf(tc.lon); got != tc.want {
			t.Errorf("partitionOf(%v) = %d, want %d", tc.lon, got, tc.want)
		}
	}
	// Finite last bound: longitudes beyond it must still land in the
	// last band via the fallback, never index out of range.
	s2 := &System{partitions: []*partition{
		{loLon: math.Inf(-1), hiLon: 0},
		{loLon: 0, hiLon: 20},
	}}
	if got := s2.partitionOf(25); got != 1 {
		t.Errorf("partitionOf east of a finite last bound = %d, want 1", got)
	}
}

// TestWatchdogLostEventAccountingParity wedges the single recognizer
// and one partition of a partitioned system over the same stream, and
// checks both account every post-wedge event as lost the same way:
// through Health.DropsByCause["watchdog"], counted per event.
func TestWatchdogLostEventAccountingParity(t *testing.T) {
	run := func(procs int, wedge int) (lost int, fed int) {
		release := make(chan struct{})
		defer close(release)
		hook := func(i int) {
			if i == wedge {
				<-release
			}
		}
		recognizerAdvanceHook.Store(&hook)
		defer recognizerAdvanceHook.Store(nil)

		sim := fleetsim.NewSimulator(simConfig(80, 3))
		fixes := sim.Run()
		vessels, areas, ports := AdaptWorld(sim)
		cfg := defaultSystemConfig()
		cfg.Processors = procs
		cfg.WatchdogTimeout = 50 * time.Millisecond
		sys := NewSystem(cfg, vessels, areas, ports)

		batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			rep := sys.ProcessBatch(b)
			if sys.Health().WatchdogTrips > 0 {
				// Events that reach a wedged recognizer after the trip are
				// the "fed" population the accounting must cover.
				fed += rep.CriticalPoints
			}
		}
		return sys.Health().DropsByCause["watchdog"], fed
	}

	lostSingle, fedSingle := run(1, -1)
	if lostSingle == 0 {
		t.Fatal("single recognizer: no events accounted as lost to the watchdog")
	}
	if fedSingle == 0 {
		t.Fatal("single recognizer: wedge happened on the final slide, test is vacuous")
	}

	lostPart, _ := run(2, 0)
	if lostPart == 0 {
		t.Fatal("partitioned: no events accounted as lost to the watchdog")
	}
	// Parity of mechanism, not of magnitude: the single recognizer loses
	// every event once wedged; the partitioned system loses only the
	// wedged band's share. Both must account through the same channel
	// and never exceed what was actually fed to a wedged recognizer.
	if lostSingle > fedSingle+lostSingle {
		t.Errorf("single recognizer over-accounted: lost %d", lostSingle)
	}
	h := Health{DropsByCause: map[string]int{"watchdog": lostPart}}
	if h.TotalDropped() != lostPart {
		t.Errorf("watchdog drops not visible through TotalDropped")
	}
}

// TestPipelineMetricsExport runs a short stream with metrics registered
// and checks every stage histogram, the throughput counters and the
// per-CE alert counters land in the exposition.
func TestPipelineMetricsExport(t *testing.T) {
	sim := fleetsim.NewSimulator(simConfig(150, 5))
	fixes := sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(defaultSystemConfig(), vessels, areas, ports)
	reg := obs.NewRegistry()
	sys.RegisterMetrics(reg)

	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	reports := sys.RunAll(batcher)
	if len(reports) == 0 {
		t.Fatal("no slides processed")
	}
	var alerts int
	for _, r := range reports {
		alerts += len(r.Alerts)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, stage := range []string{"tracking", "staging", "reconstruction", "loading", "recognition", "total"} {
		if !strings.Contains(out, `maritime_slide_stage_seconds_count{stage="`+stage+`"}`) {
			t.Errorf("no %s stage histogram in scrape", stage)
		}
	}
	for _, name := range []string{
		"maritime_slides_total", "maritime_fixes_total",
		"maritime_critical_points_total", "maritime_watchdog_trips_total",
		"maritime_wedged_partitions",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %s", name)
		}
	}
	if slides := reg.Counter("maritime_slides_total", "", nil).Value(); slides != uint64(len(reports)) {
		t.Errorf("maritime_slides_total = %d, want %d", slides, len(reports))
	}
	if alerts > 0 && !strings.Contains(out, `maritime_alerts_total{ce="`) {
		t.Error("alerts recognized but no per-CE alert counter exported")
	}
	if reg.Histogram("maritime_slide_stage_seconds", "", obs.Labels{"stage": "tracking"}, nil).Count() != uint64(len(reports)) {
		t.Error("tracking histogram observation count != slides")
	}
}
