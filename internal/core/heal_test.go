package core

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/supervise"
)

// slideBatches materializes the simulator stream into slide batches so
// golden and faulted systems can be driven in lockstep.
func slideBatches(t *testing.T, simCfg fleetsim.Config, slide time.Duration) ([]stream.Batch, []maritime.Vessel, []maritime.Area, *fleetsim.Simulator) {
	t.Helper()
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	vessels, areas, _ := AdaptWorld(sim)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), slide)
	var batches []stream.Batch
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	return batches, vessels, areas, sim
}

// alertKeys renders alerts into a comparable sorted multiset (recovered
// alerts are delivered on a later slide than the golden run emitted
// them, so per-slide order is not preserved — but the multiset must
// be).
func alertKeys(reports []SlideReport) []string {
	keys := []string{}
	for _, r := range reports {
		for _, a := range r.Alerts {
			keys = append(keys, a.String())
		}
	}
	sort.Strings(keys)
	return keys
}

// TestSelfHealRecognizerPanicQuarantineHeal injects a panic into one
// recognition partition mid-run: the process must survive, the
// partition must land in quarantine with the panic captured, Snapshot
// must refuse with ErrWedged, and after Heal the replayed partition
// must deliver the quarantine window's alerts so the run's total output
// matches the fault-free golden run exactly.
func TestSelfHealRecognizerPanicQuarantineHeal(t *testing.T) {
	simCfg := simConfig(150, 5)
	cfg := defaultSystemConfig()
	cfg.Processors = 2
	cfg.SelfHeal = true
	batches, vessels, areas, sim := slideBatches(t, simCfg, cfg.Window.Slide)
	_, _, ports := AdaptWorld(sim)
	const panicSlide = 8
	healSlide := panicSlide + 2

	golden := NewSystem(cfg, vessels, areas, ports)
	defer golden.Close()
	var goldenReports []SlideReport
	for _, b := range batches {
		goldenReports = append(goldenReports, golden.ProcessBatch(b))
	}

	sys := NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	if len(sys.partitions) != 2 {
		t.Fatalf("expected 2 partitions, got %d", len(sys.partitions))
	}
	slide := 0
	SetRecognizerFaultHook(func(partition int) {
		if partition == 0 && slide == panicSlide {
			panic("injected recognizer fault")
		}
	})
	defer SetRecognizerFaultHook(nil)

	var reports []SlideReport
	for i, b := range batches {
		slide = i
		reports = append(reports, sys.ProcessBatch(b))
		if i == panicSlide {
			h := sys.Health()
			if h.PanicsRecovered != 1 || h.Quarantined != 1 {
				t.Fatalf("after panic: health %+v, want 1 panic recovered / 1 quarantined", h)
			}
			if h.State() != "degraded" {
				t.Fatalf("state = %q, want degraded", h.State())
			}
			q := sys.Quarantined()
			if len(q) != 1 || q[0].Target != "recognizer/0" || q[0].Cause != "panic" ||
				!strings.Contains(q[0].Value, "injected recognizer fault") || q[0].Stack == "" {
				t.Fatalf("quarantine records: %+v", q)
			}
			if _, err := sys.Snapshot(); !errors.Is(err, ErrWedged) {
				t.Fatalf("Snapshot while quarantined: err=%v, want ErrWedged", err)
			}
		}
		if i == healSlide {
			if err := sys.Heal("recognizer/0"); err != nil {
				t.Fatalf("Heal: %v", err)
			}
			h := sys.Health()
			if h.Quarantined != 0 || h.Restores != 1 {
				t.Fatalf("after heal: %+v", h)
			}
			if _, err := sys.Snapshot(); err != nil {
				t.Fatalf("Snapshot after heal: %v", err)
			}
		}
	}
	want, got := alertKeys(goldenReports), alertKeys(reports)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("alert streams diverged after heal: golden %d alerts, faulted %d\ngolden: %v\nfaulted: %v",
			len(want), len(got), want, got)
	}
}

// TestSelfHealSupervisorRestoresStalledRecognizer wedges the single
// recognizer via the watchdog and lets a Supervisor attached to
// OnSlideEnd repair it automatically: ErrWedged must be transient, and
// the total alert output must match the golden run.
func TestSelfHealSupervisorRestoresStalledRecognizer(t *testing.T) {
	simCfg := simConfig(120, 4)
	cfg := defaultSystemConfig()
	cfg.SelfHeal = true
	cfg.WatchdogTimeout = 100 * time.Millisecond
	batches, vessels, areas, sim := slideBatches(t, simCfg, cfg.Window.Slide)
	_, _, ports := AdaptWorld(sim)
	const stallSlide = 6

	goldenCfg := cfg
	goldenCfg.WatchdogTimeout = 0
	golden := NewSystem(goldenCfg, vessels, areas, ports)
	defer golden.Close()
	var goldenReports []SlideReport
	for _, b := range batches {
		goldenReports = append(goldenReports, golden.ProcessBatch(b))
	}

	sys := NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	sup := supervise.New(sys, supervise.Policy{InitialBackoff: time.Millisecond})
	sys.OnSlideEnd(func(SlideReport) { sup.Poll() })

	release := make(chan struct{})
	defer close(release)
	var once sync.Once
	// The hook runs on recognition goroutines that may outlive their
	// slide (that is the point of the watchdog), so the slide number
	// must be read atomically.
	var slide atomic.Int64
	SetRecognizerFaultHook(func(partition int) {
		if slide.Load() == stallSlide {
			once.Do(func() { <-release })
		}
	})
	defer SetRecognizerFaultHook(nil)

	var reports []SlideReport
	for i, b := range batches {
		slide.Store(int64(i))
		reports = append(reports, sys.ProcessBatch(b))
	}
	h := sys.Health()
	if h.WatchdogTrips != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", h.WatchdogTrips)
	}
	if st := sup.Stats(); st.Repairs != 1 || st.GiveUps != 0 {
		t.Errorf("supervisor stats = %+v, want exactly one repair", st)
	}
	if h.Quarantined != 0 || h.Restores != 1 || h.State() != "ok" {
		t.Errorf("final health %+v (state %q), want fully recovered", h, h.State())
	}
	if _, err := sys.Snapshot(); err != nil {
		t.Errorf("Snapshot after supervised repair: %v", err)
	}
	want, got := alertKeys(goldenReports), alertKeys(reports)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("alert streams diverged: golden %d alerts, supervised %d\ngolden: %v\nsupervised: %v",
			len(want), len(got), want, got)
	}
}

// TestSelfHealStorePanicQuarantineHeal panics the archival path: the
// store is quarantined (slides keep flowing), Heal replays the journal,
// and the final store contents equal the fault-free run's.
func TestSelfHealStorePanicQuarantineHeal(t *testing.T) {
	simCfg := simConfig(120, 4)
	cfg := defaultSystemConfig()
	cfg.SelfHeal = true
	cfg.DisableRecognition = true
	batches, vessels, areas, sim := slideBatches(t, simCfg, cfg.Window.Slide)
	_, _, ports := AdaptWorld(sim)
	const panicSlide = 5

	golden := NewSystem(cfg, vessels, areas, ports)
	defer golden.Close()
	for _, b := range batches {
		golden.ProcessBatch(b)
	}
	golden.Drain(batches[len(batches)-1].Query)

	sys := NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()
	slide := 0
	sys.SetStoreFaultHook(func() {
		if slide == panicSlide {
			panic("injected archival fault")
		}
	})
	for i, b := range batches {
		slide = i
		sys.ProcessBatch(b)
		if i == panicSlide {
			q := sys.Quarantined()
			if len(q) != 1 || q[0].Target != "store" || q[0].Cause != "panic" {
				t.Fatalf("quarantine records after store panic: %+v", q)
			}
			if _, err := sys.Snapshot(); !errors.Is(err, ErrWedged) {
				t.Fatalf("Snapshot with store down: err=%v, want ErrWedged", err)
			}
		}
		if i == panicSlide+3 {
			if err := sys.Heal("store"); err != nil {
				t.Fatalf("Heal(store): %v", err)
			}
		}
	}
	sys.Drain(batches[len(batches)-1].Query)
	want, got := golden.Store().Table4Stats(), sys.Store().Table4Stats()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("store contents diverged after heal:\ngolden: %+v\nhealed: %+v", want, got)
	}
	if h := sys.Health(); h.PanicsRecovered != 1 || h.Restores != 1 {
		t.Errorf("health %+v, want 1 panic / 1 restore", h)
	}
}

// TestHealErrorsAndAbandon covers Heal's failure modes and the give-up
// path.
func TestHealErrorsAndAbandon(t *testing.T) {
	cfg := defaultSystemConfig()
	cfg.SelfHeal = true
	sim := fleetsim.NewSimulator(simConfig(40, 1))
	sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()

	if err := sys.Heal("recognizer"); err == nil || !strings.Contains(err.Error(), "not quarantined") {
		t.Errorf("healing a healthy recognizer: %v", err)
	}
	if err := sys.Heal("store"); err == nil {
		t.Error("healing a healthy store should fail")
	}
	if err := sys.Heal("nonsense"); err == nil {
		t.Error("unknown target should fail")
	}
	if err := sys.Heal("recognizer/7"); err == nil {
		t.Error("out-of-range partition should fail")
	}

	// Quarantine the single recognizer via an injected panic, then give
	// up on it: it must leave the repairable set and flip State to
	// wedged.
	SetRecognizerFaultHook(func(int) { panic("persistent fault") })
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sys.ProcessBatch(stream.Batch{Query: t0})
	SetRecognizerFaultHook(nil)
	if len(sys.Quarantined()) != 1 {
		t.Fatalf("quarantined: %+v", sys.Quarantined())
	}
	sys.Abandon("recognizer")
	if len(sys.Quarantined()) != 0 {
		t.Errorf("abandoned target still listed: %+v", sys.Quarantined())
	}
	h := sys.Health()
	if h.Failed != 1 || h.State() != "wedged" {
		t.Errorf("health after abandon: %+v (state %q), want failed=1 wedged", h, h.State())
	}
	// Later slides must keep flowing without the recognizer.
	sys.ProcessBatch(stream.Batch{Query: t0.Add(cfg.Window.Slide)})

	// A checkpoint restore supersedes the failure.
	golden := NewSystem(cfg, vessels, areas, ports)
	defer golden.Close()
	snap, err := golden.Snapshot()
	if err != nil {
		t.Fatalf("golden snapshot: %v", err)
	}
	if err := sys.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if h := sys.Health(); h.Failed != 0 || h.State() == "wedged" {
		t.Errorf("restore should re-admit failed targets: %+v", h)
	}
	sys.ProcessBatch(stream.Batch{Query: t0.Add(2 * cfg.Window.Slide)})
}

// TestDegradationLadder drives the ladder with a scripted backlog
// depth: it must climb one rung per EnterAfter overloaded slides up to
// L3 (toggling tracker shedding), hold, then descend once the overload
// clears, with every transition counted.
func TestDegradationLadder(t *testing.T) {
	cfg := defaultSystemConfig()
	depth := 0
	cfg.Degrade = &DegradeSpec{
		DepthHigh:  10,
		DepthFunc:  func() int { return depth },
		EnterAfter: 2,
		ExitAfter:  2,
	}
	sim := fleetsim.NewSimulator(simConfig(40, 1))
	sim.Run()
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(cfg, vessels, areas, ports)
	defer sys.Close()

	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	slideAt := func(i int) stream.Batch { return stream.Batch{Query: t0.Add(time.Duration(i) * cfg.Window.Slide)} }
	levels := []int{}
	i := 0
	run := func(n int) {
		for k := 0; k < n; k++ {
			sys.ProcessBatch(slideAt(i))
			levels = append(levels, sys.DegradationLevel())
			i++
		}
	}
	depth = 100
	run(7) // overloaded: climb 0,1,1,2,2,3,3 (one rung per 2 slides, capped at 3)
	wantUp := []int{0, 1, 1, 2, 2, 3, 3}
	if !reflect.DeepEqual(levels, wantUp) {
		t.Errorf("climb trajectory = %v, want %v", levels, wantUp)
	}
	depth = 0
	levels = levels[:0]
	run(7) // healthy: descend 3,2,2,1,1,0,0... ExitAfter=2 → first transition after 2 healthy slides
	wantDown := []int{3, 2, 2, 1, 1, 0, 0}
	if !reflect.DeepEqual(levels, wantDown) {
		t.Errorf("descent trajectory = %v, want %v", levels, wantDown)
	}
	h := sys.Health()
	if h.DegradationLevel != 0 {
		t.Errorf("final level = %d, want 0", h.DegradationLevel)
	}
	if h.DegradationTransitions != 6 {
		t.Errorf("transitions = %d, want 6 (3 up + 3 down)", h.DegradationTransitions)
	}
}
