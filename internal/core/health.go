package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ais"
	"repro/internal/feed"
	"repro/internal/stream"
)

// Health is the pipeline's degradation snapshot: how often the ingest
// path had to reconnect, what was dropped and why, and whether the
// recognition watchdog had to abandon a wedged partition. It is
// surfaced per slide through SlideReport and at session end by the live
// drivers, so an operator can tell "clean run" from "survived faults"
// without grepping logs.
type Health struct {
	// Reconnects and Resumes count the feed client's recoveries.
	Reconnects int
	Resumes    int
	// DialAttempts, DialFailures and Disconnects expose the transport
	// life of the reconnecting feed client, so /healthz reports the
	// whole ingest path rather than just its losses.
	DialAttempts int
	DialFailures int
	Disconnects  int
	// ResumeDupes counts duplicate fixes discarded while catching up
	// after a resume. Deliberate dedupe, not loss — so it is kept out
	// of DropsByCause, which accounts only messages that went missing.
	ResumeDupes int
	// DropsByCause accounts every discarded message by reason, merging
	// the Data Scanner's cleaning counters with transport and
	// degradation drops ("overflow", "watchdog").
	DropsByCause map[string]int
	// IngestOverflow is the bounded-buffer overflow count (also present
	// in DropsByCause under "overflow").
	IngestOverflow int
	// WatchdogTrips counts slides where a pipeline stage exceeded its
	// budget and was abandoned (recognition watchdog plus tracker shard
	// stalls); WedgedPartitions is how many recognizers are currently
	// out of service because of it.
	WatchdogTrips    int
	WedgedPartitions int
	// Supervision counters (Config.SelfHeal). PanicsRecovered counts
	// panics converted into quarantines instead of crashes; Quarantined
	// is how many targets (tracker shards, recognizers, the store) are
	// currently out of service awaiting repair; Restores counts
	// completed quarantine→restore→replay→re-admit cycles; Failed is
	// how many targets the supervisor gave up on.
	PanicsRecovered int
	Quarantined     int
	Restores        int
	Failed          int
	// Degradation ladder state (Config.Degrade): the current rung (0 =
	// full pipeline) and how many transitions the ladder has made.
	DegradationLevel       int
	DegradationTransitions int
	// Late-fix accounting: out-of-order fixes that could still be
	// sequenced into their vessel's trajectory vs fixes behind their
	// vessel's clock that had to be discarded.
	LateFixesAccepted int
	LateFixesDropped  int
	// ReplayGapSlides counts window slides lost to replay: slides
	// between a restored checkpoint and the first fix the feed could
	// actually replay, plus self-heal journal slides discarded by the
	// retention cap. Either way it reports how much of the stream was
	// unrecoverable instead of silently closing the gap.
	ReplayGapSlides int
	// Cross-vessel analytics tier accounting (Config.Analytics):
	// vessel states evicted after going stale, out-of-order points the
	// collision feed rejected, and pairwise alerts emitted.
	AnalyticsEvicted      int
	AnalyticsLateRejected int
	AnalyticsPairAlerts   int
}

// Merge returns the element-wise combination of two snapshots.
func (h Health) Merge(o Health) Health {
	out := h
	out.Reconnects += o.Reconnects
	out.Resumes += o.Resumes
	out.DialAttempts += o.DialAttempts
	out.DialFailures += o.DialFailures
	out.Disconnects += o.Disconnects
	out.ResumeDupes += o.ResumeDupes
	out.IngestOverflow += o.IngestOverflow
	out.WatchdogTrips += o.WatchdogTrips
	out.WedgedPartitions += o.WedgedPartitions
	out.PanicsRecovered += o.PanicsRecovered
	out.Quarantined += o.Quarantined
	out.Restores += o.Restores
	out.Failed += o.Failed
	out.DegradationLevel = max(out.DegradationLevel, o.DegradationLevel)
	out.DegradationTransitions += o.DegradationTransitions
	out.LateFixesAccepted += o.LateFixesAccepted
	out.LateFixesDropped += o.LateFixesDropped
	out.ReplayGapSlides += o.ReplayGapSlides
	out.AnalyticsEvicted += o.AnalyticsEvicted
	out.AnalyticsLateRejected += o.AnalyticsLateRejected
	out.AnalyticsPairAlerts += o.AnalyticsPairAlerts
	if len(o.DropsByCause) > 0 {
		if out.DropsByCause == nil {
			out.DropsByCause = make(map[string]int, len(o.DropsByCause))
		} else {
			merged := make(map[string]int, len(out.DropsByCause)+len(o.DropsByCause))
			for k, v := range out.DropsByCause {
				merged[k] = v
			}
			out.DropsByCause = merged
		}
		for k, v := range o.DropsByCause {
			out.DropsByCause[k] += v
		}
	}
	return out
}

// TotalDropped sums every accounted drop.
func (h Health) TotalDropped() int {
	n := 0
	for _, v := range h.DropsByCause {
		n += v
	}
	return n
}

// State classifies the snapshot for operators: "ok"; "degraded" when
// the system is running but below full fidelity and expected to recover
// on its own (targets quarantined awaiting repair, or the overload
// ladder active); "wedged" when a target has failed for good and needs
// operator action (restart, or a checkpoint restore).
func (h Health) State() string {
	switch {
	case h.Failed > 0:
		return "wedged"
	case h.Quarantined > 0 || h.DegradationLevel > 0 || h.WedgedPartitions > 0:
		return "degraded"
	}
	return "ok"
}

// String renders a compact one-line summary for logs.
func (h Health) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state=%s reconnects=%d resumes=%d watchdog=%d wedged=%d",
		h.State(), h.Reconnects, h.Resumes, h.WatchdogTrips, h.WedgedPartitions)
	if h.PanicsRecovered > 0 || h.Quarantined > 0 || h.Restores > 0 || h.Failed > 0 {
		fmt.Fprintf(&b, " panics=%d quarantined=%d restores=%d failed=%d",
			h.PanicsRecovered, h.Quarantined, h.Restores, h.Failed)
	}
	if h.DegradationLevel > 0 || h.DegradationTransitions > 0 {
		fmt.Fprintf(&b, " degrade=L%d(transitions %d)",
			h.DegradationLevel, h.DegradationTransitions)
	}
	if h.LateFixesAccepted > 0 || h.LateFixesDropped > 0 {
		fmt.Fprintf(&b, " late=%d(dropped %d)", h.LateFixesAccepted, h.LateFixesDropped)
	}
	if h.DialAttempts > 0 || h.Disconnects > 0 {
		fmt.Fprintf(&b, " dials=%d(fail %d) disconnects=%d",
			h.DialAttempts, h.DialFailures, h.Disconnects)
	}
	if h.ResumeDupes > 0 {
		fmt.Fprintf(&b, " resume-dupes=%d", h.ResumeDupes)
	}
	if h.ReplayGapSlides > 0 {
		fmt.Fprintf(&b, " replay-gap-slides=%d", h.ReplayGapSlides)
	}
	if h.AnalyticsPairAlerts > 0 || h.AnalyticsEvicted > 0 || h.AnalyticsLateRejected > 0 {
		fmt.Fprintf(&b, " analytics=pairs:%d(evicted %d late %d)",
			h.AnalyticsPairAlerts, h.AnalyticsEvicted, h.AnalyticsLateRejected)
	}
	if len(h.DropsByCause) > 0 {
		causes := make([]string, 0, len(h.DropsByCause))
		for k := range h.DropsByCause {
			causes = append(causes, k)
		}
		sort.Strings(causes)
		b.WriteString(" drops[")
		for i, k := range causes {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", k, h.DropsByCause[k])
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ScannerHealth folds the Data Scanner's cleaning counters into a
// Health snapshot's drop accounting.
func ScannerHealth(st ais.ScannerStats) Health {
	drops := make(map[string]int, 5)
	add := func(cause string, n int) {
		if n > 0 {
			drops[cause] = n
		}
	}
	add("checksum", st.BadChecksum)
	add("malformed", st.Malformed)
	add("unsupported", st.Unsupported)
	add("no-position", st.NoPosition)
	add("fragment-loss", st.FragmentLoss)
	return Health{DropsByCause: drops}
}

// LiveHealthSource adapts the standard live ingest chain — a
// reconnecting feed client and an optional bounded ingest buffer — into
// a Health source for AddHealthSource, so every driver accounts losses
// the same way.
func LiveHealthSource(c *feed.ReconnectingClient, buf *stream.IngestBuffer) func() Health {
	return func() Health {
		h := ScannerHealth(c.Stats())
		ns := c.NetStats()
		h.Reconnects = ns.Reconnects
		h.Resumes = ns.Resumes
		h.DialAttempts = ns.DialAttempts
		h.DialFailures = ns.DialFailures
		h.Disconnects = ns.Disconnects
		h.ResumeDupes = ns.ResumeSkipped
		if buf != nil {
			if d := buf.Dropped(); d > 0 {
				h.IngestOverflow = d
				if h.DropsByCause == nil {
					h.DropsByCause = make(map[string]int, 1)
				}
				h.DropsByCause["overflow"] += d
			}
		}
		return h
	}
}

// AddHealthSource registers a callback contributing ingest-side
// counters (feed client, ingest buffer) to the system's Health
// snapshots; drivers wire their transport layer in through this.
func (s *System) AddHealthSource(fn func() Health) {
	s.healthSources = append(s.healthSources, fn)
}

// Health merges the system's own degradation counters with every
// registered source. It reads only atomics and the sources' own
// synchronized snapshots, so it is safe to call from any goroutine
// (HTTP health and metrics scrapes) while the pipeline is mid-slide.
func (s *System) Health() Health {
	h := Health{
		WatchdogTrips:    int(s.watchdogTrips.Load()),
		WedgedPartitions: s.wedgedCount(),
		PanicsRecovered:  int(s.panicsRecovered.Load()),
		Restores:         int(s.restores.Load()),
		ReplayGapSlides:  int(s.journalGaps.Load()),
	}
	quar, failed := s.downCounts()
	ts := s.tracker.FaultStats()
	h.PanicsRecovered += ts.Panics
	h.WatchdogTrips += ts.Stalls
	h.Quarantined = quar + ts.Quarantined
	h.Failed = failed + ts.Failed
	h.Restores += ts.Retries + ts.Repairs
	h.ReplayGapSlides += ts.GapSlides
	if s.degrader != nil {
		h.DegradationLevel = s.degrader.Level()
		h.DegradationTransitions = int(s.degrader.transitions.Load())
	}
	acc, drop := s.tracker.LateFixes()
	h.LateFixesAccepted, h.LateFixesDropped = int(acc), int(drop)
	if s.analytics != nil {
		as := s.analytics.Stats()
		h.AnalyticsEvicted = int(as.Evicted)
		h.AnalyticsLateRejected = int(as.LateRejected)
		h.AnalyticsPairAlerts = int(as.PairAlerts)
	}
	drops := make(map[string]int, 4)
	if lost := s.watchdogLostEvents.Load(); lost > 0 {
		drops["watchdog"] = int(lost)
	}
	if ts.DroppedFixes > 0 {
		drops["shard-down"] = ts.DroppedFixes
	}
	if shed := s.tracker.ShedFixes(); shed > 0 {
		drops["shed-stationary"] = int(shed)
	}
	if dd := s.degradedDrops.Load(); dd > 0 {
		drops["degraded"] = int(dd)
	}
	if len(drops) > 0 {
		h.DropsByCause = drops
	}
	for _, fn := range s.healthSources {
		h = h.Merge(fn())
	}
	return h
}

func (s *System) wedgedCount() int {
	n := 0
	for _, p := range s.partitions {
		if p.down.Load() != partUp {
			n++
		}
	}
	if s.singleDown.Load() != partUp {
		n++
	}
	return n
}

// downCounts tallies the recognizers' and store's down-states:
// quarantined (repairable) vs failed (given up). Safe under concurrent
// scrapes — it reads only atomics.
func (s *System) downCounts() (quar, failed int) {
	tally := func(d int32) {
		switch d {
		case partStalled, partPanicked:
			quar++
		case partFailed:
			failed++
		}
	}
	tally(s.singleDown.Load())
	for _, p := range s.partitions {
		tally(p.down.Load())
	}
	tally(s.storeDown.Load())
	return quar, failed
}
