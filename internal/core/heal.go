package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/rtec"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

// Self-healing supervision (Config.SelfHeal). Every stateful target —
// tracker shards, recognizer partitions, the MOD store — gets the same
// treatment: a panic or watchdog stall quarantines the target instead
// of crashing or terminally abandoning it, the system keeps a journal
// of the target's recent input slides, and Heal rebuilds the target by
// restoring its last known-good snapshot and replaying the journal.
// Tracker shards implement this inside the tracker package (their
// journals are routed fixes); this file implements it for the
// recognizers and the store.
//
// Alerts a recognizer would have produced while quarantined are
// reconstructed by the replay and delivered with the next slide's
// report ("recovered" alerts): the replayed recognizer starts from the
// pre-quarantine base whose seen-set already covers everything reported
// live, so recovered alerts are exactly the ones that were lost.

// Down-state of a recognizer partition or the store.
const (
	partUp       = 0 // in service
	partStalled  = 1 // watchdog-abandoned; goroutine may still run
	partPanicked = 2 // panic recovered mid-slide
	partFailed   = 3 // operator / supervisor gave up; out of service for good
)

// recSlide is one journaled recognition input slide.
type recSlide struct {
	q      time.Time
	events []rtec.Event
	facts  []maritime.SpatialFact
}

// recJournal is one recognizer's repair journal: the snapshot the next
// replay starts from plus every input slide since. downFrom indexes the
// first journaled slide whose live output was lost to a quarantine
// (-1 while healthy); a replay reports the alerts of slides from that
// point on as recovered.
type recJournal struct {
	base     maritime.RecognizerSnapshot
	slides   []recSlide
	downFrom int
}

// storeSlide is one journaled archival input slide. reconstruct records
// whether reconstruction+loading ran that slide (the degradation ladder
// may have deferred it), so a replay reproduces the same trip
// boundaries the live path would have.
type storeSlide struct {
	delta       []tracker.CriticalPoint
	reconstruct bool
}

// storeJournal is the MOD store's repair journal: its framed snapshot
// plus the delta batches staged since.
type storeJournal struct {
	base   []byte
	slides []storeSlide
}

// initSelfHeal arms the supervision layer: the tracker's own shard
// journals, and one journal per recognizer plus one for the store.
func (s *System) initSelfHeal(vessels []maritime.Vessel, areas []maritime.Area, ports []mod.PortArea) {
	s.selfHeal = true
	s.vessels, s.areas, s.ports = vessels, areas, ports
	s.journalEvery = s.cfg.JournalSlides
	if s.journalEvery <= 0 {
		s.journalEvery = tracker.DefaultJournalSlides
	}
	s.journalCap = s.journalEvery * 8
	s.tracker.EnableSelfHeal(s.journalEvery)
	if s.cfg.WatchdogTimeout > 0 {
		s.tracker.SetSlideTimeout(s.cfg.WatchdogTimeout)
	}
	if n := s.recognizerCount(); n > 0 {
		s.recJ = make([]recJournal, n)
		for i := range s.recJ {
			s.recJ[i] = recJournal{base: s.recAt(i).Snapshot(), downFrom: -1}
		}
	}
	if !s.cfg.DisableArchival {
		s.storeJ = &storeJournal{base: s.storeBytes()}
	}
}

// recAt returns recognizer i (the single recognizer for index 0 of an
// unpartitioned system).
func (s *System) recAt(i int) *maritime.Recognizer {
	if s.recognizer != nil {
		return s.recognizer
	}
	return s.partitions[i].rec
}

// recDown returns recognizer i's down-state.
func (s *System) recDown(i int) int32 {
	if s.recognizer != nil {
		return s.singleDown.Load()
	}
	return s.partitions[i].down.Load()
}

// recTarget names recognizer i in the supervisor's namespace.
func (s *System) recTarget(i int) string {
	if s.recognizer != nil {
		return "recognizer"
	}
	return fmt.Sprintf("recognizer/%d", i)
}

// storeBytes frames the store's snapshot; an encoding failure (never
// seen in practice — the writer is a buffer) yields nil, which restore
// treats as an empty store.
func (s *System) storeBytes() []byte {
	var buf bytes.Buffer
	if err := s.store.SaveSnapshot(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

// newQuarantine captures a recovered panic into a quarantine record.
func newQuarantine(target string, v any) supervise.Quarantine {
	return supervise.Quarantine{
		Target: target,
		Cause:  "panic",
		Value:  fmt.Sprint(v),
		Stack:  string(debug.Stack()),
		Since:  time.Now(),
	}
}

// stallQuarantine captures a watchdog trip into a quarantine record.
func stallQuarantine(target string) supervise.Quarantine {
	return supervise.Quarantine{Target: target, Cause: "stall", Since: time.Now()}
}

// journalRec appends one input slide to recognizer i's journal,
// discarding (and accounting) the oldest slide at the cap.
func (s *System) journalRec(i int, q time.Time, events []rtec.Event, facts []maritime.SpatialFact) {
	j := &s.recJ[i]
	if s.recDown(i) == partFailed {
		return
	}
	if len(j.slides) >= s.journalCap {
		j.slides = append(j.slides[:0], j.slides[1:]...)
		j.slides = j.slides[:len(j.slides)-1]
		if j.downFrom > 0 {
			j.downFrom--
		}
		s.journalGaps.Add(1)
	}
	j.slides = append(j.slides, recSlide{
		q:      q,
		events: append([]rtec.Event(nil), events...),
		facts:  append([]maritime.SpatialFact(nil), facts...),
	})
}

// journalStore appends one archival input slide to the store journal.
func (s *System) journalStore(delta []tracker.CriticalPoint, reconstruct bool) {
	j := s.storeJ
	if s.storeDown.Load() == partFailed {
		return
	}
	if len(j.slides) >= s.journalCap {
		j.slides = append(j.slides[:0], j.slides[1:]...)
		j.slides = j.slides[:len(j.slides)-1]
		s.journalGaps.Add(1)
	}
	j.slides = append(j.slides, storeSlide{
		delta:       append([]tracker.CriticalPoint(nil), delta...),
		reconstruct: reconstruct,
	})
}

// markRecDown records that recognizer i's current slide (already
// journaled) and everything after it will be missing from live output.
func (s *System) markRecDown(i int) {
	if s.recJ == nil {
		return
	}
	if j := &s.recJ[i]; j.downFrom < 0 {
		j.downFrom = len(j.slides) - 1
	}
}

// quarantinePartition takes recognition partition i out of service: its
// routed events are accounted as lost, its scratch slot is abandoned to
// whatever goroutine may still hold it, and its journal is marked.
func (s *System) quarantinePartition(i int, state int32, info supervise.Quarantine) {
	p := s.partitions[i]
	p.down.Store(state)
	p.info = info
	if state == partPanicked {
		s.panicsRecovered.Add(1)
	}
	s.watchdogLostEvents.Add(int64(len(s.evByPart[i])))
	// The abandoned goroutine may still hold this slide's backing
	// arrays; never append into them again.
	s.evByPart[i] = nil
	s.factByPart[i] = nil
	s.markRecDown(i)
}

// quarantineSingle is quarantinePartition for the unpartitioned
// recognizer.
func (s *System) quarantineSingle(state int32, info supervise.Quarantine, lostEvents int) {
	s.singleDown.Store(state)
	s.singleInfo = info
	if state == partPanicked {
		s.panicsRecovered.Add(1)
	}
	s.watchdogLostEvents.Add(int64(lostEvents))
	s.markRecDown(0)
}

// quarantineStore takes the archival path out of service.
func (s *System) quarantineStore(info supervise.Quarantine) {
	s.storeDown.Store(partPanicked)
	s.storeInfo = info
	s.panicsRecovered.Add(1)
}

// rebaseJournals re-bases every healthy journal that has accumulated a
// full cadence of slides, bounding replay cost and journal memory.
func (s *System) rebaseJournals() {
	if !s.selfHeal {
		return
	}
	for i := range s.recJ {
		j := &s.recJ[i]
		if j.downFrom >= 0 || s.recDown(i) != partUp || len(j.slides) < s.journalEvery {
			continue
		}
		j.base = s.recAt(i).Snapshot()
		j.slides = j.slides[:0]
	}
	if s.storeJ != nil && s.storeDown.Load() == partUp && len(s.storeJ.slides) >= s.journalEvery {
		s.rebaseStore()
	}
}

// rebaseStore swaps the store journal's base for a fresh snapshot; on a
// (theoretical) encoding failure the old base and slides are kept.
func (s *System) rebaseStore() {
	var buf bytes.Buffer
	if err := s.store.SaveSnapshot(&buf); err != nil {
		return
	}
	s.storeJ.base = buf.Bytes()
	s.storeJ.slides = s.storeJ.slides[:0]
}

// Quarantined lists every target currently quarantined and repairable
// by Heal — tracker shards, recognizers, the store. Failed (given-up)
// targets are not listed; they show up in Health.Failed.
func (s *System) Quarantined() []supervise.Quarantine {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	out := s.tracker.Quarantined()
	if d := s.singleDown.Load(); d == partStalled || d == partPanicked {
		out = append(out, s.singleInfo)
	}
	for _, p := range s.partitions {
		if d := p.down.Load(); d == partStalled || d == partPanicked {
			out = append(out, p.info)
		}
	}
	if d := s.storeDown.Load(); d == partStalled || d == partPanicked {
		out = append(out, s.storeInfo)
	}
	return out
}

// Heal repairs one quarantined target by restore-then-replay and
// re-admits it. Targets use the supervise namespace: "tracker/N",
// "recognizer", "recognizer/N", "store". The repair runs under the
// pipeline lock, so it must not be called from an AlertSink (use
// OnSlideEnd, which fires outside the lock).
func (s *System) Heal(target string) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if !s.selfHeal {
		return errors.New("core: self-heal is not enabled")
	}
	switch {
	case strings.HasPrefix(target, "tracker/"):
		i, err := strconv.Atoi(target[len("tracker/"):])
		if err != nil {
			return fmt.Errorf("core: bad heal target %q", target)
		}
		return s.tracker.RepairShard(i)
	case target == "recognizer":
		if s.recognizer == nil {
			return errors.New("core: system has no unpartitioned recognizer")
		}
		return s.healRecognizer(0)
	case strings.HasPrefix(target, "recognizer/"):
		i, err := strconv.Atoi(target[len("recognizer/"):])
		if err != nil || i < 0 || i >= len(s.partitions) {
			return fmt.Errorf("core: bad heal target %q", target)
		}
		return s.healRecognizer(i)
	case target == "store":
		return s.healStore()
	}
	return fmt.Errorf("core: unknown heal target %q", target)
}

// Abandon gives up on a quarantined target: it moves to failed, its
// journal is freed, and it stays out of service until a snapshot
// restore supersedes the failure. The supervisor calls this when a
// target keeps failing past its give-up threshold.
func (s *System) Abandon(target string) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	switch {
	case strings.HasPrefix(target, "tracker/"):
		if i, err := strconv.Atoi(target[len("tracker/"):]); err == nil {
			s.tracker.AbandonShard(i)
		}
	case target == "recognizer":
		if s.singleDown.Load() != partUp {
			s.singleDown.Store(partFailed)
			s.freeRecJournal(0)
		}
	case strings.HasPrefix(target, "recognizer/"):
		i, err := strconv.Atoi(target[len("recognizer/"):])
		if err == nil && i >= 0 && i < len(s.partitions) && s.partitions[i].down.Load() != partUp {
			s.partitions[i].down.Store(partFailed)
			s.freeRecJournal(i)
		}
	case target == "store":
		if s.storeDown.Load() != partUp {
			s.storeDown.Store(partFailed)
			if s.storeJ != nil {
				s.storeJ.slides = nil
			}
		}
	}
}

func (s *System) freeRecJournal(i int) {
	if s.recJ != nil {
		s.recJ[i].slides = nil
	}
}

// healRecognizer rebuilds recognizer i from its journal base, replays
// every journaled slide, collects the alerts of the quarantine window
// as recovered, and re-admits. A panic during replay leaves the target
// quarantined and returns an error.
func (s *System) healRecognizer(i int) (err error) {
	down := s.recDown(i)
	if down != partStalled && down != partPanicked {
		return fmt.Errorf("core: %s is not quarantined", s.recTarget(i))
	}
	j := &s.recJ[i]
	areas := s.areas
	if s.recognizer == nil {
		areas = s.partitions[i].areas
	}
	var recovered []maritime.Alert
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: replaying %s panicked: %v", s.recTarget(i), r)
		}
	}()
	rec := maritime.NewRecognizer(s.cfg.Recognition, s.vessels, areas)
	rec.RestoreSnapshot(j.base)
	for k := range j.slides {
		sl := &j.slides[k]
		snap := rec.Advance(sl.q, sl.events, sl.facts)
		if j.downFrom >= 0 && k >= j.downFrom {
			recovered = append(recovered, snap.Alerts...)
		}
	}
	// Re-admit. The old recognizer object is simply leaked: a stalled
	// goroutine may still be running against it.
	if s.recognizer != nil {
		s.recognizer = rec
		s.singleDown.Store(partUp)
		s.singleInfo = supervise.Quarantine{}
	} else {
		s.partitions[i].rec = rec
		s.partitions[i].down.Store(partUp)
		s.partitions[i].info = supervise.Quarantine{}
	}
	j.base = rec.Snapshot()
	j.slides = j.slides[:0]
	j.downFrom = -1
	s.recovered = append(s.recovered, recovered...)
	s.restores.Add(1)
	return nil
}

// healStore rebuilds the MOD store from its journal base and replays
// the staged deltas, reproducing the same reconstruction boundaries the
// live path used.
func (s *System) healStore() (err error) {
	if d := s.storeDown.Load(); d != partStalled && d != partPanicked {
		return errors.New("core: store is not quarantined")
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: replaying store panicked: %v", r)
		}
	}()
	st := mod.New(s.ports)
	if len(s.storeJ.base) > 0 {
		if err := st.RestoreSnapshot(bytes.NewReader(s.storeJ.base)); err != nil {
			return fmt.Errorf("core: restoring store journal base: %w", err)
		}
	}
	for _, sl := range s.storeJ.slides {
		st.Stage(sl.delta)
		if sl.reconstruct {
			st.Load(st.Reconstruct())
		}
	}
	s.store = st
	s.storeDown.Store(partUp)
	s.storeInfo = supervise.Quarantine{}
	s.rebaseStore()
	s.restores.Add(1)
	return nil
}

// OnSlideEnd registers fn to run after every ProcessBatch, outside the
// pipeline lock. The supervisor attaches here: its Heal and Abandon
// calls take the same lock, so running callbacks inside it would
// deadlock.
func (s *System) OnSlideEnd(fn func(SlideReport)) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.onSlideEnd = append(s.onSlideEnd, fn)
}

// SetRecognizerFaultHook installs fn at the start of every recognition
// step, with the partition index (-1 for the single recognizer). Chaos
// tests inject panics and stalls through it; nil uninstalls.
func SetRecognizerFaultHook(fn func(partition int)) {
	if fn == nil {
		recognizerAdvanceHook.Store(nil)
		return
	}
	recognizerAdvanceHook.Store(&fn)
}

// SetStoreFaultHook installs fn at the start of every archival step;
// chaos tests inject panics through it. nil uninstalls.
func (s *System) SetStoreFaultHook(fn func()) {
	if fn == nil {
		s.storeHook.Store(nil)
		return
	}
	s.storeHook.Store(&fn)
}
