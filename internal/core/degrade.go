package core

import (
	"sync/atomic"
	"time"

	"repro/internal/maritime"
	"repro/internal/rtec"
)

// Overload-graceful degradation. When the pipeline cannot keep up with
// the stream — slides take longer than the slide period, or the ingest
// buffer backs up — the system sheds work in priority order instead of
// falling behind without bound, and climbs back to full fidelity once
// the overload clears. The ladder (paper §5.2 discusses load-dependent
// processing cost; the shedding order keeps the cheap safety-critical
// outputs alive longest):
//
//	L0 DegradeNone              full pipeline
//	L1 DegradeDeferArchival     trajectory reconstruction + loading are
//	                            deferred (staging continues, so nothing
//	                            is lost — the backlog is reconstructed
//	                            when the level drops or at drain)
//	L2 DegradeInstantaneousOnly durative ME demarcations are dropped
//	                            from recognition; instantaneous events
//	                            (turn, speedChange, gap) keep flowing
//	L3 DegradeShedStationary    the tracker drops jitter fixes from
//	                            long-stopped vessels before windowing
//
// Every transition is counted and exported (Health, /metrics), so an
// operator can tell a degraded-but-coping system from a healthy one.
const (
	DegradeNone = iota
	DegradeDeferArchival
	DegradeInstantaneousOnly
	DegradeShedStationary
)

// DegradeSpec configures the degradation ladder; see the level
// constants for what each rung sheds. The zero value of either trigger
// disables it.
type DegradeSpec struct {
	// SlideHigh is the per-slide pipeline cost above which a slide votes
	// to climb the ladder. Zero disables the latency trigger.
	SlideHigh time.Duration
	// DepthHigh is the ingest-backlog depth above which a slide votes to
	// climb; DepthFunc supplies the current depth (typically
	// IngestBuffer.Pending). Zero / nil disables the backlog trigger.
	DepthHigh int
	DepthFunc func() int
	// EnterAfter and ExitAfter are the hysteresis: that many consecutive
	// overloaded (resp. healthy) slides before moving one level up
	// (resp. down). They default to 2 and 4, so a single slow slide
	// never sheds work and recovery is deliberately more conservative
	// than degradation.
	EnterAfter int
	ExitAfter  int
	// MaxLevel caps the ladder (default DegradeShedStationary, the full
	// ladder).
	MaxLevel int
}

// degrader is the ladder's state machine. The level and transition
// counters are atomics because Health() and /metrics scrape them while
// the pipeline goroutine steps the ladder; hot/cool are touched only by
// the pipeline goroutine.
type degrader struct {
	spec        DegradeSpec
	level       atomic.Int32
	transitions atomic.Int64
	hot, cool   int
}

func newDegrader(spec DegradeSpec) *degrader {
	if spec.EnterAfter <= 0 {
		spec.EnterAfter = 2
	}
	if spec.ExitAfter <= 0 {
		spec.ExitAfter = 4
	}
	if spec.MaxLevel <= 0 || spec.MaxLevel > DegradeShedStationary {
		spec.MaxLevel = DegradeShedStationary
	}
	return &degrader{spec: spec}
}

// Level returns the current rung.
func (d *degrader) Level() int { return int(d.level.Load()) }

// observe folds one finished slide into the ladder and returns the
// (possibly changed) level. At most one rung is climbed or descended
// per slide, and any overloaded slide resets the cool-down (and vice
// versa), so the ladder cannot oscillate on a noisy boundary.
func (d *degrader) observe(slide time.Duration) int {
	over := d.spec.SlideHigh > 0 && slide > d.spec.SlideHigh
	if !over && d.spec.DepthHigh > 0 && d.spec.DepthFunc != nil {
		over = d.spec.DepthFunc() > d.spec.DepthHigh
	}
	lvl := int(d.level.Load())
	if over {
		d.cool = 0
		d.hot++
		if d.hot >= d.spec.EnterAfter && lvl < d.spec.MaxLevel {
			lvl++
			d.hot = 0
			d.level.Store(int32(lvl))
			d.transitions.Add(1)
		}
		return lvl
	}
	d.hot = 0
	if lvl == 0 {
		d.cool = 0
		return 0
	}
	d.cool++
	if d.cool >= d.spec.ExitAfter {
		lvl--
		d.cool = 0
		d.level.Store(int32(lvl))
		d.transitions.Add(1)
	}
	return lvl
}

// DegradationLevel reports the ladder's current rung (DegradeNone when
// no ladder is configured).
func (s *System) DegradationLevel() int {
	if s.degrader == nil {
		return DegradeNone
	}
	return s.degrader.Level()
}

// degradeStep runs the ladder once per slide with the slide's total
// cost, and toggles the tracker-side shedding when the L3 boundary is
// crossed.
func (s *System) degradeStep(total time.Duration) {
	old := s.degrader.Level()
	lvl := s.degrader.observe(total)
	if (lvl >= DegradeShedStationary) != (old >= DegradeShedStationary) {
		s.tracker.SetShedStationary(lvl >= DegradeShedStationary)
	}
}

// durativeDemarcations are the MEs dropped at DegradeInstantaneousOnly:
// they open and close the durative trajectory fluents whose window
// maintenance dominates recognition cost. The instantaneous MEs keep
// flowing so gap/turn/speed alerts survive the shed.
var durativeDemarcations = map[string]bool{
	maritime.MEStopStart: true,
	maritime.MEStopEnd:   true,
	maritime.MESlowStart: true,
	maritime.MESlowEnd:   true,
}

// filterInstantaneous drops the durative demarcations from the ME
// stream, counting each drop. It allocates a fresh slice — the result
// is handed to recognition goroutines that may outlive the slide, so it
// must not be reused scratch.
func (s *System) filterInstantaneous(events []rtec.Event) []rtec.Event {
	out := make([]rtec.Event, 0, len(events))
	for _, ev := range events {
		if durativeDemarcations[ev.Name] {
			s.degradedDrops.Add(1)
			continue
		}
		out = append(out, ev)
	}
	return out
}
