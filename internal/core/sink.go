package core

import (
	"fmt"
	"io"
	"sync"
)

// AlertSink consumes each slide's outcome as it is produced — the
// "alerts to authorities" edge of the paper's Figure 1. Drivers register
// sinks instead of formatting alerts themselves, so the same pipeline
// can feed a terminal, a log, and the HTTP gateway at once. Consume is
// called synchronously from ProcessBatch, on the pipeline goroutine:
// implementations must not block (hand off to a queue, as
// internal/serve does), or they stall recognition.
type AlertSink interface {
	Consume(rep SlideReport)
}

// AddAlertSink registers a sink notified after every processed slide.
func (s *System) AddAlertSink(sink AlertSink) {
	s.sinks = append(s.sinks, sink)
}

// notifySinks pushes a completed slide report to every registered sink.
func (s *System) notifySinks(rep SlideReport) {
	for _, sink := range s.sinks {
		sink.Consume(rep)
	}
}

// WriterSink renders every recognized alert to w, one per line with an
// optional prefix — the shared formatting that used to be duplicated
// across the command-line drivers. It is safe for use from one pipeline
// goroutine; the mutex only guards against a driver also writing
// through it at shutdown.
type WriterSink struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	alerts int
}

// NewWriterSink returns a sink printing alerts to w, each line prefixed
// with prefix.
func NewWriterSink(w io.Writer, prefix string) *WriterSink {
	return &WriterSink{w: w, prefix: prefix}
}

// Consume prints the slide's alerts.
func (s *WriterSink) Consume(rep SlideReport) {
	if len(rep.Alerts) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range rep.Alerts {
		fmt.Fprintf(s.w, "%s%s\n", s.prefix, a)
	}
	s.alerts += len(rep.Alerts)
}

// Alerts returns how many alerts the sink has printed.
func (s *WriterSink) Alerts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alerts
}
