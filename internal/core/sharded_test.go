package core

import (
	"testing"

	"repro/internal/maritime"
)

// runPipeline replays a seeded fleet through a full pipeline with the
// given tracker shard count and returns everything downstream consumes:
// per-slide reports plus the end state of tracker and store.
func runPipeline(t *testing.T, shards int) (*System, []SlideReport) {
	t.Helper()
	cfg := defaultSystemConfig()
	cfg.TrackerShards = shards
	sys, _, reports := buildSystem(t, simConfig(120, 4), cfg)
	return sys, reports
}

// TestShardedPipelineEquivalence asserts that the whole pipeline —
// critical points, alerts, reconstructed trips, tracker statistics — is
// invariant under the tracker shard count: the sharded tier's merged
// output must be indistinguishable from the serial tracker's as far as
// every downstream stage can observe.
func TestShardedPipelineEquivalence(t *testing.T) {
	serialSys, serialReports := runPipeline(t, 1)
	defer serialSys.Close()
	for _, shards := range []int{2, 4} {
		sys, reports := runPipeline(t, shards)
		if got := sys.Tracker().Shards(); got != shards {
			t.Fatalf("tracker has %d shards, want %d", got, shards)
		}
		if len(reports) != len(serialReports) {
			t.Fatalf("slide count %d != %d", len(reports), len(serialReports))
		}
		var totalAlerts int
		for i := range reports {
			a, b := serialReports[i], reports[i]
			if a.FixesIn != b.FixesIn || a.CriticalPoints != b.CriticalPoints ||
				a.TripsCompleted != b.TripsCompleted {
				t.Fatalf("slide %d: serial {fixes %d, critical %d, trips %d} != %d-shard {%d, %d, %d}",
					i, a.FixesIn, a.CriticalPoints, a.TripsCompleted,
					shards, b.FixesIn, b.CriticalPoints, b.TripsCompleted)
			}
			if len(a.Alerts) != len(b.Alerts) {
				t.Fatalf("slide %d: alert count %d != %d", i, len(a.Alerts), len(b.Alerts))
			}
			for j := range a.Alerts {
				if a.Alerts[j] != b.Alerts[j] {
					t.Fatalf("slide %d: alert %d differs: %v vs %v", i, j, a.Alerts[j], b.Alerts[j])
				}
			}
			totalAlerts += len(b.Alerts)
		}
		ss, gs := serialSys.Tracker().Stats(), sys.Tracker().Stats()
		if ss.FixesIn != gs.FixesIn || ss.Critical != gs.Critical ||
			ss.Duplicates != gs.Duplicates || ss.Outliers != gs.Outliers {
			t.Errorf("shards=%d: tracker stats differ: %+v vs %+v", shards, ss, gs)
		}
		st4, gt4 := serialSys.Store().Table4Stats(), sys.Store().Table4Stats()
		if st4 != gt4 {
			t.Errorf("shards=%d: MOD stats differ: %+v vs %+v", shards, st4, gt4)
		}
		if totalAlerts == 0 {
			t.Error("equivalence vacuous: no alerts recognized in the run")
		}
		sys.Close()
	}
}

// TestShardedSpatialFactsEquivalence repeats the invariance check in
// precomputed spatial-facts mode, which additionally exercises the fact
// generator's parallel fan-out path wired up by NewSystem.
func TestShardedSpatialFactsEquivalence(t *testing.T) {
	run := func(shards int) []SlideReport {
		cfg := defaultSystemConfig()
		cfg.TrackerShards = shards
		cfg.Recognition.Mode = maritime.SpatialFacts
		sys, _, reports := buildSystem(t, simConfig(100, 3), cfg)
		sys.Close()
		return reports
	}
	serial := run(1)
	sharded := run(4)
	if len(serial) != len(sharded) {
		t.Fatalf("slide count %d != %d", len(serial), len(sharded))
	}
	var alerts int
	for i := range serial {
		if len(serial[i].Alerts) != len(sharded[i].Alerts) {
			t.Fatalf("slide %d: alert count %d != %d", i, len(serial[i].Alerts), len(sharded[i].Alerts))
		}
		for j := range serial[i].Alerts {
			if serial[i].Alerts[j] != sharded[i].Alerts[j] {
				t.Fatalf("slide %d: alert %d differs", i, j)
			}
		}
		alerts += len(serial[i].Alerts)
	}
	if alerts == 0 {
		t.Error("equivalence vacuous: no alerts in spatial-facts mode")
	}
}
