package core

import (
	"fmt"

	"repro/internal/fleetsim"
	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/mod"
)

// AdaptWorld converts a simulator's static world into the inputs of the
// surveillance system: the vessel registry with fishing designations
// and drafts, the areas of interest (including watch areas around the
// loitering rendezvous spots, standing in for the "potentially
// suspicious areas" officials are familiar with — paper §4.1), and the
// port polygons for trip segmentation.
func AdaptWorld(sim *fleetsim.Simulator) (vessels []maritime.Vessel, areas []maritime.Area, ports []mod.PortArea) {
	for _, v := range sim.Fleet() {
		vessels = append(vessels, maritime.Vessel{
			MMSI:    v.MMSI,
			Fishing: v.Fishing,
			DraftM:  v.DraftM,
		})
	}
	for _, a := range sim.World().Areas {
		areas = append(areas, maritime.Area{
			ID:        a.ID,
			Kind:      adaptKind(a.Kind),
			Poly:      a.Poly,
			MinDepthM: a.MinDepthM,
		})
	}
	for i, spot := range sim.LoiterSpots() {
		areas = append(areas, maritime.Area{
			ID:   fmt.Sprintf("watch-%02d", i),
			Kind: maritime.KindWatch,
			Poly: squareAround(spot, 0.01),
		})
	}
	for _, p := range sim.World().Ports {
		ports = append(ports, mod.PortArea{Name: p.Name, Poly: p.Poly})
	}
	return vessels, areas, ports
}

// adaptKind maps the simulator's area taxonomy onto the recognizer's.
func adaptKind(k fleetsim.AreaKind) maritime.AreaKind {
	switch k {
	case fleetsim.AreaProtected:
		return maritime.KindProtected
	case fleetsim.AreaForbiddenFishing:
		return maritime.KindForbiddenFishing
	default:
		return maritime.KindShallow
	}
}

// squareAround returns a square polygon of the given half-side (deg)
// centered at c.
func squareAround(c geo.Point, half float64) *geo.Polygon {
	return geo.MustPolygon([]geo.Point{
		{Lon: c.Lon - half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat + half},
		{Lon: c.Lon - half, Lat: c.Lat + half},
	})
}
