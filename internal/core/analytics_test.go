package core

import (
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
)

// pairOf normalizes an alert's vessel pair to (low, high).
func pairOf(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

// scorePairwise matches pairwise alerts of one CE against scripted
// truth episodes of one kind: an episode is recalled when some alert
// names its vessel pair within the padded episode window; an alert is
// a true positive when it matches some episode the same way.
func scorePairwise(alerts []maritime.Alert, truth []fleetsim.TruthEvent,
	kind fleetsim.TruthKind, pad time.Duration) (recalled, episodes, truePos int) {
	var eps []fleetsim.TruthEvent
	for _, ev := range truth {
		if ev.Kind == kind {
			eps = append(eps, ev)
		}
	}
	matches := func(a maritime.Alert, ev fleetsim.TruthEvent) bool {
		return pairOf(a.Vessel, a.Vessel2) == pairOf(ev.MMSI, ev.MMSI2) &&
			a.Time.After(ev.Start.Add(-pad)) && a.Time.Before(ev.End.Add(pad))
	}
	for _, ev := range eps {
		for _, a := range alerts {
			if matches(a, ev) {
				recalled++
				break
			}
		}
	}
	for _, a := range alerts {
		for _, ev := range eps {
			if matches(a, ev) {
				truePos++
				break
			}
		}
	}
	return recalled, len(eps), truePos
}

// TestPairwiseAnalyticsGroundTruth runs the full pipeline with the
// cross-vessel tier enabled over a fleet seeded with scripted
// rendezvous and dark-rendezvous pairs, and checks the tier finds the
// scripted episodes (recall) without drowning them in fabrications
// (precision). Incidental rendezvous between scripted loiterers —
// vessels genuinely stopped together in open water — are counted as
// correct detections, not false positives.
func TestPairwiseAnalyticsGroundTruth(t *testing.T) {
	simCfg := simConfig(150, 6)
	simCfg.RendezvousPairs = 3
	simCfg.DarkPairs = 3
	sysCfg := defaultSystemConfig()
	sysCfg.Analytics = &analytics.Config{}
	sys, sim, reports := buildSystem(t, simCfg, sysCfg)

	byCE := make(map[string][]maritime.Alert)
	for _, r := range reports {
		for _, a := range r.Alerts {
			if a.Vessel2 != 0 {
				byCE[a.CE] = append(byCE[a.CE], a)
			}
		}
	}

	loiterish := make(map[uint32]bool)
	for _, spec := range sim.Fleet() {
		if spec.Behavior == fleetsim.BehaviorLoiterer {
			loiterish[spec.MMSI] = true
		}
	}

	// Rendezvous: all scripted episodes recalled; every alert explained
	// by a scripted pair or a loiterer group.
	rv := byCE[maritime.CERendezvous]
	recalled, episodes, truePos := scorePairwise(rv, sim.Truth(), fleetsim.TruthRendezvous, 30*time.Minute)
	t.Logf("rendezvous: %d alerts, recall %d/%d, scripted-pair TP %d", len(rv), recalled, episodes, truePos)
	if episodes != 3 {
		t.Fatalf("expected 3 scripted rendezvous episodes, got %d", episodes)
	}
	if recalled < episodes {
		t.Errorf("rendezvous recall %d/%d", recalled, episodes)
	}
	for _, a := range rv {
		if loiterish[a.Vessel] && loiterish[a.Vessel2] {
			truePos++ // genuine open-water group stop, scripted as loitering
		}
	}
	if truePos < len(rv) {
		t.Errorf("rendezvous precision %d/%d: unexplained pairs", truePos, len(rv))
	}

	// Dark rendezvous: the gap-linking screen must recover the scripted
	// dark meetings from gap endpoints alone.
	dk := byCE[maritime.CEDarkRendezvous]
	recalled, episodes, truePos = scorePairwise(dk, sim.Truth(), fleetsim.TruthDarkRendezvous, time.Hour)
	t.Logf("darkRendezvous: %d alerts, recall %d/%d, scripted-pair TP %d", len(dk), recalled, episodes, truePos)
	if episodes != 3 {
		t.Fatalf("expected 3 scripted dark episodes, got %d", episodes)
	}
	if recalled < episodes {
		t.Errorf("darkRendezvous recall %d/%d", recalled, episodes)
	}
	if truePos < len(dk) {
		t.Errorf("darkRendezvous precision %d/%d: unexplained links", truePos, len(dk))
	}

	if st := sys.Analytics().Stats(); st.PairAlerts == 0 {
		t.Error("tier stats report no pair alerts despite emitted alerts")
	}

	// The base stream must be untouched when no pairs are scripted: the
	// pair actors ride on fresh MMSIs appended after the base fleet.
	baseSim := fleetsim.NewSimulator(simConfig(150, 6))
	if n, m := len(baseSim.Fleet()), len(sim.Fleet()); m != n+12 {
		t.Errorf("pair actors: fleet grew %d -> %d, want +12", n, m)
	}
}

// TestAnalyticsDisabledByDefault pins the opt-in contract: without
// Config.Analytics the pipeline emits no pairwise alerts and the
// existing recognition output is untouched.
func TestAnalyticsDisabledByDefault(t *testing.T) {
	simCfg := simConfig(80, 3)
	simCfg.RendezvousPairs = 1
	sys, _, reports := buildSystem(t, simCfg, defaultSystemConfig())
	if sys.Analytics() != nil {
		t.Fatal("analytics tier built without opt-in")
	}
	for _, r := range reports {
		for _, a := range r.Alerts {
			if a.Vessel2 != 0 {
				t.Fatalf("pairwise alert %v without the tier enabled", a)
			}
		}
	}
}
