package core

import (
	"testing"
	"time"

	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// buildSystem runs the simulator and assembles the pipeline.
func buildSystem(t *testing.T, cfg fleetsim.Config, sysCfg Config) (*System, *fleetsim.Simulator, []SlideReport) {
	t.Helper()
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	vessels, areas, ports := AdaptWorld(sim)
	sys := NewSystem(sysCfg, vessels, areas, ports)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), sysCfg.Window.Slide)
	reports := sys.RunAll(batcher)
	return sys, sim, reports
}

func defaultSystemConfig() Config {
	return Config{
		Window:  stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute},
		Tracker: tracker.DefaultParams(),
		Recognition: maritime.Config{
			Window: time.Hour,
		},
	}
}

func simConfig(vessels int, hours int) fleetsim.Config {
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	return cfg
}

func TestEndToEndPipeline(t *testing.T) {
	sys, _, reports := buildSystem(t, simConfig(150, 5), defaultSystemConfig())
	if len(reports) == 0 {
		t.Fatal("no slides processed")
	}
	stats := sys.Tracker().Stats()
	if stats.FixesIn == 0 || stats.Critical == 0 {
		t.Fatalf("tracker stats empty: %+v", stats)
	}
	ratio := stats.CompressionRatio()
	if ratio < 0.3 || ratio >= 1 {
		t.Errorf("compression ratio = %.3f, expected meaningful reduction", ratio)
	}
	var alerts int
	for _, r := range reports {
		alerts += len(r.Alerts)
	}
	if alerts == 0 {
		t.Error("no complex events recognized over a 5-hour fleet run")
	}
}

func TestIllegalShippingTruthRecall(t *testing.T) {
	sys, sim, reports := buildSystem(t, simConfig(150, 6), defaultSystemConfig())
	_ = sys
	horizon := sim.Truth()
	// Collect recognized illegalShipping (area, time) pairs.
	type hit struct {
		area string
		at   time.Time
	}
	var recognized []hit
	for _, r := range reports {
		for _, a := range r.Alerts {
			if a.CE == maritime.CEIllegalShipping {
				recognized = append(recognized, hit{area: a.AreaID, at: a.Time})
			}
		}
	}
	// Every scripted transmitter-off crossing whose gap completed well
	// within the run must be recognized at its protected area.
	runEnd := sim.Truth()[0].Start // placeholder; recompute below
	_ = runEnd
	want, got := 0, 0
	for _, ev := range horizon {
		if ev.Kind != fleetsim.TruthGapInProtected {
			continue
		}
		if ev.End.After(time.Date(2009, 6, 1, 5, 30, 0, 0, time.UTC)) {
			continue // gap not fully inside the run
		}
		want++
		for _, h := range recognized {
			if h.area == ev.AreaID && h.at.After(ev.Start.Add(-15*time.Minute)) &&
				h.at.Before(ev.End.Add(15*time.Minute)) {
				got++
				break
			}
		}
	}
	if want == 0 {
		t.Skip("no completed transmitter-off crossings in this run")
	}
	// Recall need not be perfect: a spontaneous noise gap can overlap a
	// scripted silence, leaving the last known position genuinely far
	// from the protected area — rule (5) can only fire on where the gap
	// started. Most crossings must still be recognized.
	if got*2 < want {
		t.Errorf("illegalShipping recall %d/%d scripted crossings", got, want)
	}
}

func TestSuspiciousAreaTruthRecall(t *testing.T) {
	sys, sim, reports := buildSystem(t, simConfig(150, 6), defaultSystemConfig())
	_ = sim
	found := false
	for _, r := range reports {
		for _, a := range r.Alerts {
			if a.CE == maritime.CESuspicious {
				found = true
			}
		}
	}
	if !found {
		// The intervals may also be inspected directly.
		for i := 0; i < 2; i++ {
			id := []string{"watch-00", "watch-01"}[i]
			if len(sys.RecognizerIntervals(maritime.CESuspicious, id)) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("scripted loitering group never recognized as suspicious")
	}
}

func TestDangerousAndIllegalFishingRecognized(t *testing.T) {
	_, _, reports := buildSystem(t, simConfig(200, 6), defaultSystemConfig())
	byCE := make(map[string]int)
	for _, r := range reports {
		for _, a := range r.Alerts {
			byCE[a.CE]++
		}
	}
	if byCE[maritime.CEDangerousShipping] == 0 {
		t.Error("no dangerousShipping recognized despite scripted shoal runners")
	}
	if byCE[maritime.CEIllegalFishing] == 0 {
		t.Error("no illegalFishing recognized despite scripted forbidden-ground trawlers")
	}
}

func TestArchivalProducesTrips(t *testing.T) {
	// Ferries shuttling for 10 hours with a 1-hour window: port stops
	// expire from the window and must segment into trips.
	sysCfg := defaultSystemConfig()
	sys, _, _ := buildSystem(t, simConfig(150, 10), sysCfg)
	t4 := sys.Store().Table4Stats()
	if t4.Trips == 0 {
		t.Fatal("no trips reconstructed from a 10-hour ferry-heavy run")
	}
	if t4.PointsInTrajectories == 0 {
		t.Error("no points assigned to trajectories")
	}
	if t4.AvgDistanceMeters <= 0 || t4.AvgTravelTime <= 0 {
		t.Errorf("degenerate trip stats: %+v", t4)
	}
}

func TestTimingsPopulated(t *testing.T) {
	_, _, reports := buildSystem(t, simConfig(80, 3), defaultSystemConfig())
	var total Timings
	for _, r := range reports {
		total.Tracking += r.Timings.Tracking
		total.Staging += r.Timings.Staging
		total.Reconstruction += r.Timings.Reconstruction
		total.Loading += r.Timings.Loading
		total.Recognition += r.Timings.Recognition
	}
	if total.Tracking == 0 {
		t.Error("tracking timing never measured")
	}
	if total.Total() < total.Tracking {
		t.Error("Total() inconsistent")
	}
}

func TestDisableFlags(t *testing.T) {
	sysCfg := defaultSystemConfig()
	sysCfg.DisableRecognition = true
	sysCfg.DisableArchival = true
	sys, _, reports := buildSystem(t, simConfig(60, 2), sysCfg)
	if sys.Recognizer() != nil {
		t.Error("recognizer built despite DisableRecognition")
	}
	for _, r := range reports {
		if len(r.Alerts) != 0 {
			t.Fatal("alerts produced with recognition disabled")
		}
	}
	if sys.Store().StagedCount() != 0 || len(sys.Store().Trips()) != 0 {
		t.Error("archival ran despite DisableArchival")
	}
	if sys.RecognizerIntervals(maritime.CESuspicious, "watch-00") != nil {
		t.Error("intervals from disabled recognizer")
	}
}

func TestSpatialFactsModeEndToEnd(t *testing.T) {
	sysCfg := defaultSystemConfig()
	sysCfg.Recognition.Mode = maritime.SpatialFacts
	_, _, reports := buildSystem(t, simConfig(120, 5), sysCfg)
	var alerts int
	for _, r := range reports {
		alerts += len(r.Alerts)
	}
	if alerts == 0 {
		t.Error("no alerts in spatial-facts mode")
	}
}

func TestPartitionedRecognition(t *testing.T) {
	// Processors > 1 splits recognition into longitude bands; the
	// scripted violations must still be found.
	sysCfg := defaultSystemConfig()
	sysCfg.Processors = 2
	sys, _, reports := buildSystem(t, simConfig(150, 6), sysCfg)
	if sys.Recognizer() != nil {
		t.Fatal("single recognizer built despite Processors=2")
	}
	byCE := make(map[string]int)
	for _, r := range reports {
		for _, a := range r.Alerts {
			byCE[a.CE]++
		}
	}
	if byCE[maritime.CEIllegalShipping] == 0 {
		t.Error("no illegalShipping recognized by the partitioned system")
	}
	if byCE[maritime.CESuspicious] == 0 {
		t.Error("no suspicious recognized by the partitioned system")
	}
}

func TestPartitionedMatchesSingleOnInteriorAreas(t *testing.T) {
	// The alert sets should largely coincide; boundary-straddling
	// vessels may differ, so compare as a superset-with-slack check.
	single, _, reportsSingle := buildSystem(t, simConfig(150, 6), defaultSystemConfig())
	_ = single
	cfg2 := defaultSystemConfig()
	cfg2.Processors = 2
	_, _, reportsPart := buildSystem(t, simConfig(150, 6), cfg2)

	count := func(reports []SlideReport) int {
		n := 0
		for _, r := range reports {
			n += len(r.Alerts)
		}
		return n
	}
	a, b := count(reportsSingle), count(reportsPart)
	if b < a/2 || b > a*2 {
		t.Errorf("partitioned alert volume %d wildly differs from single %d", b, a)
	}
}
