// Package repro is a from-scratch Go reproduction of "Event Recognition
// for Maritime Surveillance" (Patroumpas, Artikis, Katzouris, Vodas,
// Theodoridis, Pelekis — EDBT 2015): online trajectory detection over
// streaming AIS positions, complex event recognition with an Event
// Calculus runtime (RTEC), trajectory archival in a moving-object
// store, and the paper's full empirical evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package holds only the benchmark suite
// (bench_test.go), one testing.B benchmark per table and figure of the
// paper's evaluation; the implementation lives under internal/ and the
// runnable surfaces under cmd/ and examples/.
package repro
