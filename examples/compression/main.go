// Compression: trajectory synopsis quality on a single long voyage —
// the trade-off of the paper's Figures 8 and 9 in miniature. The same
// noisy voyage is compressed under each turn threshold Δθ and the
// program reports critical points kept, compression ratio, and RMSE of
// the reconstructed path; it also writes the Δθ = 15° synopsis as KML.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/export"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// voyage simulates a noisy multi-leg voyage: Piraeus out through the
// Cyclades with several course changes, a half-hour hove-to, and home.
func voyage() []ais.Fix {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2009, 6, 20, 5, 0, 0, 0, time.UTC)
	legs := []struct {
		heading float64 // initial heading
		drift   float64 // degrees of heading change per minute (a curve)
		speedKn float64
		minutes int
	}{
		{140, 0, 12, 50},    // out of the Saronic gulf
		{140, -0.8, 14, 70}, // a long gentle arc toward the Cyclades
		{75, 0, 14, 60},     // threading the islands
		{75, 0, 0, 30},      // hove-to: engine trouble
		{80, 0.6, 10, 40},   // limping on along a slow curve
		{255, 0, 13, 90},    // the long way home
		{255, 1.1, 12, 60},  // curving onto the final approach
	}
	pos := geo.Point{Lon: 23.62, Lat: 37.90}
	t := start
	var fixes []ais.Fix
	for _, leg := range legs {
		heading := leg.heading
		for i := 0; i < leg.minutes; i++ {
			t = t.Add(time.Minute)
			heading += leg.drift
			pos = geo.Destination(pos, heading, geo.KnotsToMetersPerSecond(leg.speedKn)*60)
			// GPS jitter of ~10 m on every fix.
			noisy := geo.Destination(pos, rng.Float64()*360, rng.Float64()*10)
			fixes = append(fixes, ais.Fix{MMSI: 237004242, Pos: noisy, Time: t})
		}
	}
	return fixes
}

func main() {
	fixes := voyage()
	fmt.Printf("voyage: %d raw positions over %s\n\n",
		len(fixes), fixes[len(fixes)-1].Time.Sub(fixes[0].Time))
	fmt.Printf("%-6s %10s %12s %10s\n", "Δθ", "critical", "compression", "RMSE (m)")

	var kmlPoints []tracker.CriticalPoint
	for _, deg := range []float64{5, 10, 15, 20} {
		params := tracker.DefaultParams()
		params.TurnThresholdDeg = deg
		tr := tracker.New(params, stream.WindowSpec{Range: 24 * time.Hour, Slide: time.Hour})

		var points []tracker.CriticalPoint
		batcher := stream.NewBatcher(stream.NewSliceSource(fixes), time.Hour)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			points = append(points, tr.Slide(b).Fresh...)
		}
		st := tr.Stats()
		_, maxErr := tracker.FleetRMSE(fixes, points)
		fmt.Printf("%-6.0f %10d %11.1f%% %10.1f\n",
			deg, st.Critical, st.CompressionRatio()*100, maxErr)
		if deg == 15 {
			kmlPoints = points
		}
	}

	f, err := os.Create("voyage.kml")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := export.WriteKML(f, "compressed voyage", kmlPoints); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nwrote the Δθ=15° synopsis to voyage.kml")
}
