// Live monitor: the control-center deployment the paper targets (§7) —
// an in-process feed server replays a simulated Aegean fleet at 600×
// real time over TCP, and a monitoring client consumes the live NMEA
// stream, tracks trajectories, recognizes complex events, watches for
// collision courses, and issues short-term position forecasts.
//
// The wire is deliberately unreliable: the stream is routed through a
// fault-injection proxy that resets the connection mid-replay and
// corrupts the occasional sentence, so the run also demonstrates the
// fault-tolerance layer — reconnect with resume, bounded ingest
// buffering, the recognition watchdog, and the health summary that
// accounts for every lost message.
//
// The session also runs the alert gateway (internal/serve) on
// loopback; with -sse the CE alerts are printed by an SSE subscriber
// consuming the gateway's /events stream instead of the local sink —
// the same wire any external operator console would use.
//
//	go run ./examples/livemonitor
//	go run ./examples/livemonitor -sse
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/forecast"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	viaSSE := flag.Bool("sse", false, "print CE alerts via the gateway's SSE stream instead of the local sink")
	flag.Parse()
	// The "at-sea" side: a feed server replaying three simulated hours.
	simCfg := fleetsim.DefaultConfig()
	simCfg.Vessels = 150
	simCfg.Duration = 3 * time.Hour
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := &feed.Server{Fixes: fixes, Speedup: 600, HandshakeWait: 2 * time.Second} // 3 h in ~18 s
	addrCh := make(chan net.Addr, 1)
	go func() {
		if err := srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh); err != nil {
			fmt.Fprintln(os.Stderr, "feed:", err)
		}
	}()
	addr := (<-addrCh).String()

	// A hostile stretch of wire between ship and shore: the connection
	// is severed (mid-sentence) partway through the replay, and one
	// sentence in 400 arrives corrupted.
	proxy := &faults.Proxy{
		Upstream: addr,
		Plan: faults.Plan{
			Seed:            7,
			ResetAfterLines: []int{2000},
			TruncateOnReset: true,
			CorruptEvery:    400,
		},
	}
	proxyCh := make(chan net.Addr, 1)
	go func() {
		if err := proxy.ListenAndServe(ctx, "127.0.0.1:0", proxyCh); err != nil {
			fmt.Fprintln(os.Stderr, "proxy:", err)
		}
	}()
	proxyAddr := (<-proxyCh).String()
	fmt.Printf("live AIS feed on %s (%d fixes at 600x, via a faulty link)\n\n", proxyAddr, len(fixes))

	// The control-center side.
	vessels, areas, ports := core.AdaptWorld(sim)
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	sys := core.NewSystem(core.Config{
		Window:          window,
		Tracker:         tracker.DefaultParams(),
		Recognition:     maritime.Config{Window: window.Range},
		WatchdogTimeout: 5 * time.Second,
	}, vessels, areas, ports)
	watch := collision.New(collision.Params{DistanceMeters: 400})
	oracle := forecast.New(tracker.DefaultParams())

	// The serving tier: an alert gateway over the same system, exposed
	// on loopback for any SSE consumer or curl, with the observability
	// registry covering every tier of this session.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	sys.RegisterMetrics(reg)
	gw := serve.New(sys, serve.Options{Heartbeat: 2 * time.Second, Metrics: reg})
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go func() { _ = http.Serve(gwLn, gw.Handler()) }()
	gwURL := "http://" + gwLn.Addr().String()
	fmt.Printf("alert gateway on %s (try: curl -N %s/events, curl %s/metrics)\n\n", gwURL, gwURL, gwURL)

	// CE alerts are printed either by the shared writer sink, or — with
	// -sse — by a subscriber consuming the gateway's own event stream.
	var sseWG sync.WaitGroup
	sseCtx, stopSSE := context.WithCancel(ctx)
	defer stopSSE()
	if *viaSSE {
		sseWG.Add(1)
		go func() {
			defer sseWG.Done()
			err := serve.StreamAlerts(sseCtx, gwURL+"/events", 0, func(e serve.Envelope) {
				fmt.Printf("CE ALERT   %s  [sse #%d]\n", e.Alert, e.Seq)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sse:", err)
			}
		}()
	} else {
		sys.AddAlertSink(core.NewWriterSink(os.Stdout, "CE ALERT   "))
	}

	client, err := feed.DialReconnecting(proxyAddr, feed.DefaultRetryPolicy())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()
	client.RegisterMetrics(reg)
	buf := stream.NewIngestBuffer(client, 1<<14)
	defer buf.Close()
	buf.RegisterMetrics(reg)
	sys.AddHealthSource(core.LiveHealthSource(client, buf))

	batcher := stream.NewBatcher(buf, window.Slide)
	alertCount := 0
	reported := make(map[[2]uint32]time.Time) // encounter pair → last report
	var lastQ time.Time
	for {
		batch, ok := batcher.Next()
		if !ok {
			break
		}
		lastQ = batch.Query
		for _, f := range batch.Fixes {
			watch.Observe(f)
			oracle.ObserveFix(f)
		}
		report := gw.Process(batch)
		oracle.ObserveEvents(nil)

		alertCount += len(report.Alerts)
		for _, e := range watch.Encounters(batch.Query) {
			pair := [2]uint32{e.A, e.B}
			if last, ok := reported[pair]; ok && batch.Query.Sub(last) < time.Hour {
				continue // an ongoing encounter is reported once per hour
			}
			reported[pair] = batch.Query
			fmt.Printf("COLLISION  %d vs %d: CPA %.0f m in %s near %s\n",
				e.A, e.B, e.DCPA, e.TCPA.Round(time.Second), e.Where)
		}
	}
	if err := buf.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
	}
	if *viaSSE {
		// Let the subscriber drain the last slide's alerts off the hub
		// before tearing the stream down.
		time.Sleep(200 * time.Millisecond)
		stopSSE()
		sseWG.Wait()
	}

	fmt.Printf("\nfeed ended at %s; %d complex events recognized\n", lastQ.Format("15:04"), alertCount)
	fmt.Printf("pipeline health: %s\n", sys.Health())
	hubStats := gw.Hub().Stats()
	fmt.Printf("gateway fan-out: %d published, %d delivered, %d dropped\n",
		hubStats.Published, hubStats.Delivered, hubStats.Dropped)
	fmt.Println("\n15-minute forecasts for the three fastest tracks:")
	printed := 0
	for _, p := range oracle.PredictAll(lastQ, 15*time.Minute) {
		if p.Confidence != forecast.ConfidenceHigh || printed >= 3 {
			continue
		}
		fmt.Printf("  vessel %d expected at %s by %s\n",
			p.MMSI, p.Pos, p.At.Format("15:04"))
		printed++
	}
}
