// Illegal fishing: a hand-built scenario showing the paper's Scenario 2
// directly against the public API — a designated fishing vessel trawls
// inside a forbidden-fishing reef while an identical non-fishing vessel
// does the same nearby; only the fisher raises illegalFishing, and the
// CE's maximal interval tracks the trawl.
//
//	go run ./examples/illegalfishing
package main

import (
	"fmt"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/rtec"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// trawl produces a slow zigzag track (2.8 knots) starting at origin.
func trawl(mmsi uint32, origin geo.Point, start time.Time, n int) []ais.Fix {
	fixes := make([]ais.Fix, 0, n)
	pos, heading := origin, 70.0
	t := start
	for i := 0; i < n; i++ {
		t = t.Add(time.Minute)
		heading += []float64{25, -40, 15, -10}[i%4]
		pos = geo.Destination(pos, heading, geo.KnotsToMetersPerSecond(2.8)*60)
		fixes = append(fixes, ais.Fix{MMSI: mmsi, Pos: pos, Time: t})
	}
	return fixes
}

// transit produces a straight 12-knot approach ending at dest.
func transit(mmsi uint32, dest geo.Point, start time.Time, n int) []ais.Fix {
	step := geo.KnotsToMetersPerSecond(12) * 60
	fixes := make([]ais.Fix, n)
	for i := 0; i < n; i++ {
		back := float64(n-1-i) * step
		fixes[i] = ais.Fix{
			MMSI: mmsi,
			Pos:  geo.Destination(dest, 250, back), // approach from the north-east
			Time: start.Add(time.Duration(i) * time.Minute),
		}
	}
	return fixes
}

func main() {
	start := time.Date(2009, 7, 14, 4, 0, 0, 0, time.UTC)
	reef := geo.Point{Lon: 25.30, Lat: 36.10}

	// Static knowledge: the reef is a forbidden fishing area; vessel
	// 237001001 is registered as a fishing boat, 237002002 is not.
	areas := []maritime.Area{{
		ID:   "kalogeroi-reef",
		Kind: maritime.KindForbiddenFishing,
		Poly: geo.MustPolygon([]geo.Point{
			{Lon: reef.Lon - 0.04, Lat: reef.Lat - 0.03},
			{Lon: reef.Lon + 0.04, Lat: reef.Lat - 0.03},
			{Lon: reef.Lon + 0.05, Lat: reef.Lat + 0.03},
			{Lon: reef.Lon - 0.05, Lat: reef.Lat + 0.03},
		}),
	}}
	vessels := []maritime.Vessel{
		{MMSI: 237001001, Fishing: true, DraftM: 2.5},
		{MMSI: 237002002, Fishing: false, DraftM: 2.5},
	}

	// Both vessels approach the reef and trawl across it for 40 minutes.
	var fixes []ais.Fix
	fixes = append(fixes, transit(237001001, reef, start, 20)...)
	fixes = append(fixes, trawl(237001001, reef, start.Add(20*time.Minute), 40)...)
	east := geo.Destination(reef, 90, 1200)
	fixes = append(fixes, transit(237002002, east, start.Add(2*time.Minute), 20)...)
	fixes = append(fixes, trawl(237002002, east, start.Add(22*time.Minute), 40)...)

	// Trajectory detection: the trawl shows up as a lowSpeed episode.
	tr := tracker.New(tracker.DefaultParams(), stream.WindowSpec{
		Range: 2 * time.Hour, Slide: 10 * time.Minute,
	})
	rec := maritime.NewRecognizer(maritime.Config{Window: 2 * time.Hour},
		vessels, areas)

	batcher := stream.NewBatcher(sortSource(fixes), 10*time.Minute)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		res := tr.Slide(b)
		snap := rec.Advance(b.Query, maritime.MEStream(res.Fresh), nil)
		for _, a := range snap.Alerts {
			fmt.Println("ALERT:", a)
		}
	}

	key := rtec.FluentKey{
		Fluent: maritime.CEIllegalFishing, Entity: "kalogeroi-reef", Value: rtec.True,
	}
	fmt.Println("\nholdsFor(illegalFishing(kalogeroi-reef)=true):")
	for _, iv := range rec.Engine().HoldsFor(key) {
		since := time.Unix(iv.Since, 0).UTC()
		until := "ongoing"
		if !iv.Open() {
			until = time.Unix(iv.Until, 0).UTC().Format("15:04:05")
		}
		fmt.Printf("  (%s, %s]\n", since.Format("15:04:05"), until)
	}
	fmt.Println("\nthe non-fishing vessel 237002002 performed the same manoeuvre and raised nothing")
}

// sortSource wraps the fixes in time order for the batcher.
func sortSource(fixes []ais.Fix) *stream.SliceSource {
	sorted := append([]ais.Fix(nil), fixes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Time.Before(sorted[j-1].Time); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return stream.NewSliceSource(sorted)
}
