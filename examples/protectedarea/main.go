// Protected area: the paper's Scenario 3 — a tanker "breaks down" its
// transmitter while cutting through a marine park, and Scenario 4 — the
// same deep-draft tanker then creeps over a shoal. The communication
// gap near the park raises illegalShipping; the slow pass over waters
// shallower than its draft raises dangerousShipping.
//
//	go run ./examples/protectedarea
package main

import (
	"fmt"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	start := time.Date(2009, 8, 2, 22, 0, 0, 0, time.UTC)
	park := geo.Point{Lon: 23.90, Lat: 39.15}   // the marine park
	shoal := geo.Point{Lon: 24.145, Lat: 39.15} // the shoal further east

	areas := []maritime.Area{
		{
			ID: "alonnisos-marine-park", Kind: maritime.KindProtected,
			Poly: square(park, 0.06),
		},
		{
			ID: "psathoura-shoal", Kind: maritime.KindShallow,
			Poly: square(shoal, 0.03), MinDepthM: 6,
		},
	}
	vessels := []maritime.Vessel{
		{MMSI: 237009999, Fishing: false, DraftM: 11}, // a laden tanker
	}

	// The tanker sails east at 13 knots toward the park, goes silent
	// 2 km short of it, reappears 25 minutes later on the far side, then
	// slows to 3 knots over the shoal.
	var fixes []ais.Fix
	t := start
	pos := geo.Destination(park, 270, 18000) // 18 km west of the park
	emit := func(speedKn float64, minutes int, silent bool) {
		for i := 0; i < minutes; i++ {
			t = t.Add(time.Minute)
			pos = geo.Destination(pos, 90, geo.KnotsToMetersPerSecond(speedKn)*60)
			if !silent {
				fixes = append(fixes, ais.Fix{MMSI: 237009999, Pos: pos, Time: t})
			}
		}
	}
	emit(13, 40, false) // approach: last report ~2 km west of the park
	emit(13, 25, true)  // transmitter "failure" while crossing
	emit(13, 30, false) // reappears east of the park
	emit(3, 25, false)  // creeping over the shoal
	emit(13, 20, false) // back to cruise

	tr := tracker.New(tracker.DefaultParams(), stream.WindowSpec{
		Range: 3 * time.Hour, Slide: 5 * time.Minute,
	})
	rec := maritime.NewRecognizer(maritime.Config{Window: 3 * time.Hour},
		vessels, areas)

	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 5*time.Minute)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		res := tr.Slide(b)
		for _, cp := range res.Fresh {
			switch cp.Type {
			case tracker.EventGapStart, tracker.EventGapEnd,
				tracker.EventSlowStart, tracker.EventSlowEnd:
				fmt.Printf("ME: %s\n", cp)
			}
		}
		snap := rec.Advance(b.Query, maritime.MEStream(res.Fresh), nil)
		for _, a := range snap.Alerts {
			fmt.Println("ALERT:", a)
		}
	}
}

func square(c geo.Point, half float64) *geo.Polygon {
	return geo.MustPolygon([]geo.Point{
		{Lon: c.Lon - half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat + half},
		{Lon: c.Lon - half, Lat: c.Lat + half},
	})
}
