// Quickstart: simulate a small fleet, run the complete surveillance
// pipeline — online trajectory detection, complex event recognition,
// trajectory archival — and print what the system saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	// 1. A deterministic synthetic Aegean fleet: 200 vessels, 6 hours.
	simCfg := fleetsim.DefaultConfig()
	simCfg.Vessels = 200
	simCfg.Duration = 6 * time.Hour
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()
	fmt.Printf("simulated %d AIS position reports from %d vessels\n",
		len(fixes), len(sim.Fleet()))

	// 2. Assemble the pipeline: a one-hour window sliding every ten
	// minutes, the paper's calibrated tracking parameters, and the four
	// maritime complex event definitions over the simulated geography.
	vessels, areas, ports := core.AdaptWorld(sim)
	sys := core.NewSystem(core.Config{
		Window:      stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute},
		Tracker:     tracker.DefaultParams(),
		Recognition: maritime.Config{Window: time.Hour},
	}, vessels, areas, ports)

	// 3. Replay the stream window slide by window slide.
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 10*time.Minute)
	var alerts []maritime.Alert
	for {
		batch, ok := batcher.Next()
		if !ok {
			break
		}
		report := sys.ProcessBatch(batch)
		alerts = append(alerts, report.Alerts...)
	}
	sys.Drain(fixes[len(fixes)-1].Time)

	// 4. What did the system see?
	stats := sys.Tracker().Stats()
	fmt.Printf("\ntrajectory detection: %d fixes compressed to %d critical points (%.1f%%)\n",
		stats.FixesIn, stats.Critical, stats.CompressionRatio()*100)

	fmt.Printf("\ncomplex events recognized:\n")
	for _, a := range alerts {
		fmt.Printf("  %s\n", a)
	}

	t4 := sys.Store().Table4Stats()
	fmt.Printf("\ntrajectory archive:\n")
	fmt.Printf("  %d trips between ports, avg %.0f critical points and %.1f km each\n",
		t4.Trips, t4.AvgPointsPerTrip, t4.AvgDistanceMeters/1000)
}
