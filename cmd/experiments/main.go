// Command experiments regenerates every table and figure of the
// paper's evaluation (§5) against the synthetic workload, printing the
// same rows and series the paper reports. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	experiments -list                 # show experiment ids and settings
//	experiments -run all              # everything (default scale)
//	experiments -run fig8,fig9        # a subset
//	experiments -run fig11a -scale ci # quick run
//	experiments -run fig6b -scale paper
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/expbench"
	"repro/internal/tracker"
)

// experiment binds an id to its runner.
type experiment struct {
	id    string
	about string
	run   func(w *expbench.Workloads)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		runList   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scaleName = flag.String("scale", "default", "workload scale: ci, default, paper")
		list      = flag.Bool("list", false, "list experiments and settings, then exit")
	)
	flag.Parse()

	scale := expbench.ScaleDefault
	switch *scaleName {
	case "ci":
		scale = expbench.ScaleCI
	case "default":
	case "paper":
		scale = expbench.ScalePaper
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	out := os.Stdout
	experiments := []experiment{
		{"fig6a", "tracking cost per slide, small windows (ω ∈ {1h,2h})", func(w *expbench.Workloads) {
			expbench.WriteFig6(out, "Figure 6(a)", expbench.Fig6a(w.Short()))
		}},
		{"fig6b", "tracking cost per slide, large windows (ω ∈ {6h,24h})", func(w *expbench.Workloads) {
			expbench.WriteFig6(out, "Figure 6(b)", expbench.Fig6b(w.Long()))
		}},
		{"fig7", "tracking at inflated arrival rates ρ up to 10K pos/s", func(w *expbench.Workloads) {
			expbench.WriteFig7(out, expbench.Fig7(w.Short(), nil, w.Scale.Fig7Reps, 3))
		}},
		{"fig8", "trajectory approximation RMSE vs Δθ", func(w *expbench.Workloads) {
			expbench.WriteFig8(out, expbench.Fig89(w.Short()))
		}},
		{"fig9", "compression ratio and critical points vs Δθ", func(w *expbench.Workloads) {
			expbench.WriteFig9(out, expbench.Fig89(w.Short()))
		}},
		{"fig10", "trajectory maintenance breakdown per slide", func(w *expbench.Workloads) {
			expbench.WriteFig10(out, expbench.Fig10(w.Long()))
		}},
		{"table4", "statistics from compressed trajectories", func(w *expbench.Workloads) {
			expbench.WriteTable4(out, expbench.Table4(w.Long()))
		}},
		{"fig11a", "CE recognition time, on-demand spatial reasoning", func(w *expbench.Workloads) {
			expbench.WriteFig11(out, "Figure 11(a)", expbench.Fig11a(w.Short()))
		}},
		{"fig11b", "CE recognition time, precomputed spatial facts", func(w *expbench.Workloads) {
			expbench.WriteFig11(out, "Figure 11(b)", expbench.Fig11b(w.Short()))
		}},
		{"scaling", "online cost vs fleet size N (the scalability claim)", func(w *expbench.Workloads) {
			sizes := []int{250, 500, 1000, 2000}
			if w.Scale.Name == "ci" {
				sizes = []int{100, 250, 500}
			}
			expbench.WriteScaling(out, expbench.ScalingSweep(sizes, 6, w.Scale.Seed))
		}},
		{"delay", "delayed ME arrival: window range vs information loss (§4.2)", func(w *expbench.Workloads) {
			expbench.WriteDelay(out, expbench.DelayExperiment(w.Short(), 90*time.Minute, 0.25))
		}},
		{"baseline", "online critical points vs offline Douglas–Peucker (§3.2/§6)", func(w *expbench.Workloads) {
			expbench.WriteBaseline(out, expbench.BaselineSimplify(w.Short()))
		}},
		{"prob", "probabilistic recognition: belief threshold vs alerts/recall (§7)", func(w *expbench.Workloads) {
			expbench.WriteProb(out, expbench.ProbSweep(w.Short(), nil))
		}},
		{"ablation", "design-choice ablations (outlier filter, window, grid)", func(w *expbench.Workloads) {
			expbench.WriteAblationOutlier(out, expbench.RunAblationOutlier(w.Short()))
			fmt.Fprintln(out)
			expbench.WriteAblationWindow(out, expbench.RunAblationWindow(w.Short()))
			fmt.Fprintln(out)
			expbench.WriteAblationGrid(out, expbench.RunAblationGrid(w.Short()))
		}},
	}

	if *list {
		fmt.Println("Experiments (pass ids to -run, comma-separated, or 'all'):")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.about)
		}
		fmt.Println("\nTable 2 — experimental settings (scaled):")
		fmt.Printf("  scale %-8s fleet N=%d, short runs %s, long runs %s\n",
			scale.Name, scale.Vessels, scale.Short, scale.Long)
		fmt.Println("  windows ω ∈ {10min…24h}, slides β ∈ {1min…4h}, rates ρ up to 10K pos/s")
		fmt.Println("\nTable 3 — mobility tracking parameters (defaults in bold in the paper):")
		p := tracker.DefaultParams()
		fmt.Printf("  v_min=%.0f knot, α=%.0f%%, ΔT=%s, Δθ∈{5°,10°,15°,20°} (default %.0f°), r=%.0fm, m=%d\n",
			p.VMinKnots, p.SpeedChangeFrac*100, p.GapPeriod, p.TurnThresholdDeg,
			p.StopRadiusMeters, p.M)
		return
	}

	if *runList == "" {
		log.Fatal("pass -run <ids|all> or -list")
	}
	selected := map[string]bool{}
	if *runList == "all" {
		for _, e := range experiments {
			selected[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	w := expbench.NewWorkloads(scale)
	ran := 0
	for _, e := range experiments {
		if !selected[e.id] {
			continue
		}
		delete(selected, e.id)
		log.Printf("running %s (scale %s, N=%d) ...", e.id, scale.Name, scale.Vessels)
		t0 := time.Now()
		e.run(w)
		fmt.Printf("\n[%s completed in %s]\n\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	for id := range selected {
		log.Printf("unknown experiment id %q (see -list)", id)
	}
	if ran == 0 {
		os.Exit(1)
	}
}
