package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// healthzPayload is the cluster's /healthz shape: the folded worker
// health plus the coordinator's merge accounting.
type healthzPayload struct {
	Status       string              `json:"status"`
	Health       core.Health         `json:"health"`
	SlidesMerged int                 `json:"slides_merged"`
	ForcedMerges int                 `json:"forced_merges"`
	Dropped      map[string]int      `json:"dropped_slides,omitempty"`
	Alerts       int                 `json:"alerts"`
	Manifests    int                 `json:"manifests"`
	Hub          serve.HubStats      `json:"hub"`
	Router       cluster.RouterStats `json:"router"`
}

// mux wires the cluster's HTTP surface: SSE alerts with Last-Event-ID
// replay from the hub ring, the alert-history tail, cluster health, and
// the metrics exposition.
func mux(coord *cluster.Coordinator, router *cluster.Router, hub *serve.Hub, reg *obs.Registry) http.Handler {
	m := http.NewServeMux()
	m.Handle("/metrics", reg.Handler())
	m.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := coord.Stats()
		h := coord.Health()
		p := healthzPayload{
			Status:       h.State(),
			Health:       h,
			SlidesMerged: st.SlidesMerged,
			ForcedMerges: st.ForcedMerges,
			Dropped:      st.DropsByCause,
			Alerts:       st.Alerts,
			Manifests:    st.Manifests,
			Hub:          hub.Stats(),
			Router:       router.Stats(),
		}
		writeJSON(w, p)
	})
	m.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		writeJSON(w, hub.Ring().Last(n))
	})
	m.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, r, hub)
	})
	return m
}

// serveEvents streams merged alerts as Server-Sent Events. The envelope
// sequence is the event id, so a reconnecting client resumes from
// Last-Event-ID and sees every alert exactly once — including across a
// coordinator restart, because a manifest restore continues the hub's
// sequence.
func serveEvents(w http.ResponseWriter, r *http.Request, hub *serve.Hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	filter, err := serve.ParseFilter(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var sub *serve.Subscriber
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw != "" {
		if after, err := strconv.ParseUint(raw, 10, 64); err == nil {
			sub = hub.SubscribeFrom(filter, 256, after)
		}
	}
	if sub == nil {
		sub = hub.Subscribe(filter, 256)
	}
	defer sub.Close()
	stop := context.AfterFunc(r.Context(), sub.Close)
	defer stop()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		env, ok, timedOut := sub.NextTimeout(15 * time.Second)
		switch {
		case timedOut:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
		case !ok:
			return
		default:
			data, err := json.Marshal(env)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", env.Seq, data); err != nil {
				return
			}
		}
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
