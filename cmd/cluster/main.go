// Command cluster runs the shared tiers of a distributed recognition
// cluster in one process: the router, which partitions the upstream AIS
// stream into per-vessel-slice feeds by the same MMSI hash the
// in-process tracker shards use, and the coordinator, which merges the
// workers' slide outputs deterministically, runs CE recognition over
// the merged event stream, and serves alerts and cluster health over
// HTTP. Workers are separate cmd/worker processes, one per slice.
//
// A three-worker cluster on one machine:
//
//	cluster -workers 3 -vessels 300 -hours 3
//	worker -id 0 -workers 3 -vessels 300   # × 3, -id 0..2
//	worker -id 1 -workers 3 -vessels 300
//	worker -id 2 -workers 3 -vessels 300
//
//	curl -N 'http://localhost:8080/events'
//	curl 'http://localhost:8080/healthz'
//	curl 'http://localhost:8080/metrics'
//
// With -manifest-dir the coordinator binds the workers' autonomous
// checkpoints into atomic cluster manifests; with -restore-dirs (the
// workers' checkpoint directories, reachable from this process) a
// restart restores the newest coherent generation and logs the
// checkpoint sequence each worker must be pinned to (-pin-seq).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (/events /alerts /healthz /metrics)")
		live    = flag.String("feed", "", "consume a live feed at this address (see cmd/feed); empty = simulate internally")
		vessels = flag.Int("vessels", 300, "fleet size (must match the feed's world when -feed is used)")
		hours   = flag.Float64("hours", 3, "simulated duration (internal runs only)")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		areas   = flag.Int("areas", 35, "areas of interest")
		speedup = flag.Float64("speedup", 600, "time acceleration of the internal feed (0 = as fast as possible)")
		window  = flag.Duration("window", time.Hour, "window range ω")
		slide   = flag.Duration("slide", 10*time.Minute, "window slide β")

		workers   = flag.Int("workers", 3, "cluster width: number of vessel slices / worker processes")
		sliceBase = flag.Int("slice-base-port", 4101, "slice i listens on 127.0.0.1:(base+i)")
		sliceCSV  = flag.String("slice-addrs", "", "comma-separated slice listen addresses (overrides -slice-base-port)")
		uplink    = flag.String("uplink", "127.0.0.1:4200", "coordinator listen address for worker uplinks")
		retain    = flag.Int("retain", 1<<16, "per-slice replay-ring bound, in fixes")
		queueCap  = flag.Int("queue-cap", 64, "per-worker pending-slide bound before the oldest slide is force-merged")
		ring      = flag.Int("ring", 1024, "alert-history retention for SSE replay and /alerts, in alerts")

		manifestDir = flag.String("manifest-dir", "", "record cluster manifests here (empty = off)")
		restoreCSV  = flag.String("restore-dirs", "", "comma-separated worker checkpoint dirs; restore the newest coherent generation")
		keep        = flag.Int("manifest-keep", 3, "manifest generations to retain")
		pairwise    = flag.Bool("pairwise", true, "run the cross-vessel analytics tier on the coordinator (rendezvous, dark gap linking, collision screening)")
	)
	flag.Parse()

	// The coordinator regenerates the same static world the workers
	// carry; -seed/-vessels/-areas must match across every process.
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	var store *cluster.ManifestStore
	var restored *cluster.Manifest
	if *manifestDir != "" {
		var err error
		store, err = cluster.NewManifestStore(*manifestDir, *keep)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *restoreCSV != "" {
		if store == nil {
			log.Fatal("-restore-dirs needs -manifest-dir")
		}
		dirs := strings.Split(*restoreCSV, ",")
		if len(dirs) != *workers {
			log.Fatalf("-restore-dirs lists %d dirs for %d workers", len(dirs), *workers)
		}
		var err error
		restored, err = cluster.RestoreCluster(store, dirs)
		if err != nil {
			log.Printf("restore: skipped generations: %v", err)
		}
		if restored != nil {
			log.Printf("restored manifest: query %s, %d slides", restored.Query.Format(time.RFC3339), restored.Slides)
			for w, seq := range restored.WorkerSeqs {
				log.Printf("  start worker %d with -pin-seq %d", w, seq)
			}
		}
	}

	hub := serve.NewHub(*ring)
	hub.RegisterMetrics(reg)
	coordCfg := cluster.CoordinatorConfig{
		Workers:     *workers,
		Slide:       *slide,
		WindowRange: *window,
		Recognition: maritime.Config{Window: *window},
		Vessels:     vesselsReg,
		Areas:       areasReg,
		QueueCap:    *queueCap,
		Hub:         hub,
		Manifests:   store,
		Restore:     restored,
		Logf:        log.Printf,
	}
	if *pairwise {
		coordCfg.Analytics = &analytics.Config{EnableCollision: true}
		coordCfg.Ports = ports
	}
	coord, err := cluster.NewCoordinator(coordCfg)
	if err != nil {
		log.Fatal(err)
	}
	coord.RegisterMetrics(reg)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	coordAddr, err := coord.ListenAndServe(ctx, *uplink)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinator uplink on %s", coordAddr)

	router := cluster.NewRouter(cluster.RouterOptions{
		Workers:     *workers,
		RetainFixes: *retain,
		Logf:        log.Printf,
	})
	router.RegisterMetrics(reg)
	sliceAddrs := make([]string, *workers)
	if *sliceCSV != "" {
		parts := strings.Split(*sliceCSV, ",")
		if len(parts) != *workers {
			log.Fatalf("-slice-addrs lists %d addresses for %d workers", len(parts), *workers)
		}
		copy(sliceAddrs, parts)
	} else {
		for i := range sliceAddrs {
			sliceAddrs[i] = fmt.Sprintf("127.0.0.1:%d", *sliceBase+i)
		}
	}
	bound, err := router.ListenSlices(ctx, sliceAddrs)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range bound {
		log.Printf("slice %d feed on %s", i, a)
	}

	// The ingest path mirrors cmd/serve: a reconnecting client on either
	// the live feed or an in-process simulation server, so the router
	// resumes upstream with the same RESUME semantics the workers use
	// downstream.
	feedAddr := *live
	if feedAddr == "" {
		srv := &feed.Server{Fixes: sim.Run(), Speedup: *speedup, HandshakeWait: 2 * time.Second}
		addrCh := make(chan net.Addr, 1)
		go func() {
			if err := srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh); err != nil {
				log.Printf("internal feed: %v", err)
			}
		}()
		feedAddr = (<-addrCh).String()
		log.Printf("internal feed on %s (%gx)", feedAddr, *speedup)
	}
	var client *feed.ReconnectingClient
	if restored != nil {
		client, err = feed.DialReconnectingFrom(feedAddr, feed.DefaultRetryPolicy(), restored.Cursor)
	} else {
		client, err = feed.DialReconnecting(feedAddr, feed.DefaultRetryPolicy())
	}
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(reg)
	go func() {
		<-ctx.Done()
		client.Close()
	}()

	go func() {
		if err := router.Run(ctx, client); err != nil && ctx.Err() == nil {
			log.Printf("router: %v", err)
		}
		st := router.Stats()
		log.Printf("router: stream ended, %d fixes dispatched", st.Dispatched)
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: mux(coord, router, hub, reg)}
	go func() {
		log.Printf("cluster gateway on http://%s  (endpoints: /events /alerts /healthz /metrics)", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	select {
	case <-coord.Done():
		f := coord.Final()
		st := coord.Stats()
		log.Printf("cluster done: %d slides merged (%d forced), %d alerts, %d trips archived",
			f.Slides, st.ForcedMerges, f.Alerts, f.Final.Trips)
		for cause, n := range st.DropsByCause {
			log.Printf("  dropped slides: %s = %d", cause, n)
		}
		log.Printf("health: %s", coord.Health())
		log.Printf("still serving alert history and health (Ctrl-C to quit)")
		<-ctx.Done()
	case <-ctx.Done():
	}

	hub.Close()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
	defer stop()
	_ = httpSrv.Shutdown(shutdownCtx)
}
