// Command aisgen generates a synthetic AIS dataset with the fleet
// simulator: a deterministic, Aegean-like positional stream standing in
// for the proprietary dataset of the paper's evaluation. Output is
// either the scanner's CSV format (mmsi,lon,lat,unix) or timestamped
// NMEA AIVDM sentences.
//
// Usage:
//
//	aisgen -vessels 500 -hours 6 -seed 1 -format csv > fleet.csv
//	aisgen -vessels 100 -hours 2 -format nmea > fleet.nmea
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/ais"
	"repro/internal/fleetsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aisgen: ")

	var (
		vessels = flag.Int("vessels", 500, "fleet size N")
		hours   = flag.Float64("hours", 6, "simulated duration in hours")
		seed    = flag.Int64("seed", 1, "random seed")
		areas   = flag.Int("areas", 35, "number of areas of interest")
		format  = flag.String("format", "csv", "output format: csv or nmea")
		truth   = flag.String("truth", "", "also write scripted ground truth to this file")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))

	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	log.Printf("generated %d fixes from %d vessels over %s", len(fixes), *vessels, cfg.Duration)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *format {
	case "csv":
		for _, f := range fixes {
			if err := ais.WriteFixCSV(w, f); err != nil {
				log.Fatal(err)
			}
		}
	case "nmea":
		// Interleave type 5 static/voyage reports roughly every half hour
		// per vessel. Their destination field is deliberately unreliable
		// — blank, stale, or a random port — modelling the paper's
		// observation (§3.2) that the crew-typed voyage data cannot be
		// trusted for trip semantics.
		vrng := rand.New(rand.NewSource(cfg.Seed + 99))
		specs := make(map[uint32]fleetsim.VesselSpec, len(sim.Fleet()))
		for _, v := range sim.Fleet() {
			specs[v.MMSI] = v
		}
		lastVoyage := make(map[uint32]time.Time)
		for i, f := range fixes {
			if last, ok := lastVoyage[f.MMSI]; !ok || f.Time.Sub(last) >= 30*time.Minute {
				lastVoyage[f.MMSI] = f.Time
				for _, line := range ais.EncodeVoyageSentences(voyageFor(vrng, sim, specs[f.MMSI]), "A", i) {
					fmt.Fprintf(w, "%d %s\n", f.Time.Unix(), line)
				}
			}
			r := &ais.PositionReport{
				Type: ais.TypePositionA, MMSI: f.MMSI,
				Lon: f.Pos.Lon, Lat: f.Pos.Lat,
				UTCSecond: f.Time.Second(),
			}
			lines, err := ais.EncodeSentences(r, "A", i)
			if err != nil {
				log.Fatal(err)
			}
			for _, line := range lines {
				fmt.Fprintf(w, "%d %s\n", f.Time.Unix(), line)
			}
		}
	default:
		log.Fatalf("unknown format %q (want csv or nmea)", *format)
	}

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		tw := bufio.NewWriter(tf)
		defer tw.Flush()
		for _, ev := range sim.Truth() {
			fmt.Fprintf(tw, "%s,%d,%s,%d,%d\n", ev.Kind, ev.MMSI, ev.AreaID,
				ev.Start.Unix(), ev.End.Unix())
		}
		log.Printf("wrote %d ground-truth episodes to %s", len(sim.Truth()), *truth)
	}
}

// shipTypeCode maps the simulator taxonomy onto AIS ship type codes.
func shipTypeCode(t fleetsim.VesselType) int {
	switch t {
	case fleetsim.TypeCargo:
		return 70
	case fleetsim.TypeTanker:
		return 80
	case fleetsim.TypePassenger:
		return 60
	case fleetsim.TypeFishing:
		return 30
	default:
		return 90
	}
}

// voyageFor builds a type 5 report for the vessel. The destination
// field reproduces the unreliability the paper describes: often blank,
// sometimes a wrong port, occasionally mistyped.
func voyageFor(rng *rand.Rand, sim *fleetsim.Simulator, spec fleetsim.VesselSpec) *ais.StaticVoyage {
	v := &ais.StaticVoyage{
		MMSI:     spec.MMSI,
		IMO:      9_000_000 + spec.MMSI%1_000_000,
		CallSign: fmt.Sprintf("SV%04d", spec.MMSI%10000),
		ShipName: strings.ToUpper(spec.Name),
		ShipType: shipTypeCode(spec.Type),
		DraughtM: spec.DraftM,
	}
	ports := sim.World().Ports
	switch r := rng.Float64(); {
	case r < 0.4:
		// Left blank by the crew.
	case r < 0.6:
		// A stale or wrong port.
		v.Destination = strings.ToUpper(ports[rng.Intn(len(ports))].Name)
	default:
		name := strings.ToUpper(ports[rng.Intn(len(ports))].Name)
		if rng.Float64() < 0.3 && len(name) > 4 {
			name = name[:len(name)-2] // the classic truncated entry
		}
		v.Destination = name
	}
	return v
}
