package main

import (
	"context"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ais"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// ClusterRow is one cluster-topology measurement: the whole distributed
// pipeline — router partitioning, worker tracking, wire shipping, k-way
// merge, recognition over the merged stream — timed end to end over the
// same fix stream as the single-process reference.
type ClusterRow struct {
	Workers     int     `json:"workers"`
	WallMs      float64 `json:"wall_ms"`
	FixesPerSec float64 `json:"fixes_per_sec"`
	Slides      int     `json:"slides"`
	Alerts      int     `json:"alerts"`
	// OverheadVsSingle is this topology's wall clock over the
	// single-process in-memory run of the same stream: the price of the
	// wire hops and the merge barrier. Below 1.0 means the worker
	// parallelism outweighed that price on this machine.
	OverheadVsSingle float64 `json:"overhead_vs_single,omitempty"`
}

// benchClusterAll measures the single-process reference and each
// requested cluster width over the same stream, and cross-checks that
// every topology produced the identical alert count — the equivalence
// contract, enforced even in the benchmark.
func benchClusterAll(simCfg fleetsim.Config, fixes []ais.Fix, widths []int) []ClusterRow {
	slide := 5 * time.Minute
	refWall, refSlides, refAlerts := benchSingle(simCfg, fixes, slide)
	rows := []ClusterRow{{
		Workers:     0, // 0 = single process, no cluster tiers
		WallMs:      float64(refWall.Microseconds()) / 1e3,
		FixesPerSec: float64(len(fixes)) / refWall.Seconds(),
		Slides:      refSlides,
		Alerts:      refAlerts,
	}}
	for _, n := range widths {
		row := benchCluster(simCfg, fixes, slide, n)
		row.OverheadVsSingle = row.WallMs / rows[0].WallMs
		if row.Alerts != refAlerts {
			log.Printf("WARNING: cluster(%d) recognized %d alerts, single process %d — equivalence broken",
				n, row.Alerts, refAlerts)
		}
		log.Printf("cluster workers=%d: %.0f ms wall, %.0f fixes/s, %.2fx single-process wall",
			n, row.WallMs, row.FixesPerSec, row.OverheadVsSingle)
		rows = append(rows, row)
	}
	return rows
}

// benchSingle runs the full in-memory pipeline (tracking + recognition
// in one process, no wire) over the stream once.
func benchSingle(simCfg fleetsim.Config, fixes []ais.Fix, slide time.Duration) (time.Duration, int, int) {
	world := fleetsim.NewSimulator(simCfg)
	world.Run()
	vessels, areas, ports := core.AdaptWorld(world)
	sys := core.NewSystem(core.Config{
		Window:      stream.WindowSpec{Range: time.Hour, Slide: slide},
		Tracker:     tracker.DefaultParams(),
		Recognition: maritime.Config{Window: time.Hour},
	}, vessels, areas, ports)
	defer sys.Close()

	start := time.Now()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), slide)
	slides, alerts := 0, 0
	var last time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		slides++
		alerts += len(rep.Alerts)
		last = rep.Query
	}
	if !last.IsZero() {
		sys.Drain(last)
	}
	return time.Since(start), slides, alerts
}

// benchCluster stands up the full cluster in-process — router and
// coordinator plus n workers as goroutines, all talking over loopback
// TCP with the real wire protocols — and times dispatch-to-Done.
func benchCluster(simCfg fleetsim.Config, fixes []ais.Fix, slide time.Duration, n int) ClusterRow {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	world := fleetsim.NewSimulator(simCfg)
	world.Run()
	vessels, areas, ports := core.AdaptWorld(world)

	router := cluster.NewRouter(cluster.RouterOptions{Workers: n, RetainFixes: len(fixes) + 1})
	addrs, err := router.ListenSlices(ctx, nil)
	if err != nil {
		log.Fatalf("cluster bench: %v", err)
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Workers:     n,
		Slide:       slide,
		WindowRange: time.Hour,
		Recognition: maritime.Config{Window: time.Hour},
		Vessels:     vessels,
		Areas:       areas,
		QueueCap:    1 << 16, // benchmark all-healthy: never force a merge
	})
	if err != nil {
		log.Fatalf("cluster bench: %v", err)
	}
	coordAddr, err := coord.ListenAndServe(ctx, "127.0.0.1:0")
	if err != nil {
		log.Fatalf("cluster bench: %v", err)
	}

	gridStart := fixes[0].Time.Truncate(slide)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			ID:          i,
			Workers:     n,
			Router:      addrs[i].String(),
			Coordinator: coordAddr.String(),
			System: core.Config{
				Window:      stream.WindowSpec{Range: time.Hour, Slide: slide},
				Tracker:     tracker.DefaultParams(),
				Recognition: maritime.Config{Window: time.Hour},
			},
			Vessels:   vessels,
			Areas:     areas,
			Ports:     ports,
			GridStart: gridStart,
		})
		if err != nil {
			log.Fatalf("cluster bench: worker %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("cluster bench: worker: %v", err)
			}
		}()
	}

	start := time.Now()
	for _, f := range fixes {
		router.Dispatch(f)
	}
	router.Finish()
	select {
	case <-coord.Done():
	case <-time.After(5 * time.Minute):
		log.Fatalf("cluster bench: %d-worker run did not finish", n)
	}
	wall := time.Since(start)
	wg.Wait()

	f := coord.Final()
	return ClusterRow{
		Workers:     n,
		WallMs:      float64(wall.Microseconds()) / 1e3,
		FixesPerSec: float64(len(fixes)) / wall.Seconds(),
		Slides:      f.Slides,
		Alerts:      f.Alerts,
	}
}

// parseWidths parses the -cluster flag (comma-separated worker counts).
func parseWidths(csv string) []int {
	if csv == "" {
		return nil
	}
	var widths []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -cluster entry %q", s)
		}
		widths = append(widths, n)
	}
	return widths
}
