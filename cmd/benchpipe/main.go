// benchpipe benchmarks the surveillance pipeline end to end: the
// sharded mobility-tracking tier in isolation (throughput and
// allocation pressure per slide, across shard counts) and the full
// core.System (per-stage latency percentiles). It writes a JSON
// artifact, BENCH_pipeline.json, comparing every configuration against
// the pre-sharding serial baseline embedded below, so a run on any
// machine shows both the scaling curve of this build and the distance
// to the old code.
//
//	go run ./cmd/benchpipe                        # full run, writes BENCH_pipeline.json
//	go run ./cmd/benchpipe -quick -out /dev/null  # CI smoke
//	go run ./cmd/benchpipe -shards 1,2,4,8 -vessels 1000 -hours 3
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// Pre-sharding serial baseline, measured on this repository immediately
// before the sharded tier and the zero-alloc hot path landed (tracker
// commit parent of the sharding change; fleetsim seed 42, 400 vessels,
// 2 h, ω = 1 h, β = 5 min → 17 898 fixes over 24 slides; single CPU).
// Kept as reference so any later run can report an honest speedup and
// allocation delta against the old code on the same workload shape.
const (
	baselineNsPerSlide     = 825000.0
	baselineAllocsPerSlide = 491.5
	baselineBytesPerSlide  = 115788.0
	baselineVessels        = 400
	baselineHours          = 2
)

// TrackRow is one tracking-tier configuration's measurement.
type TrackRow struct {
	Shards         int     `json:"shards"`
	NsPerSlide     float64 `json:"ns_per_slide"`
	AllocsPerSlide float64 `json:"allocs_per_slide"`
	BytesPerSlide  float64 `json:"bytes_per_slide"`
	FixesPerSec    float64 `json:"fixes_per_sec"`
	// SpeedupVsSerial is this row's throughput over the 1-shard row of
	// the same run; SpeedupVsBaseline is over the embedded pre-sharding
	// constants (only comparable on the baseline workload shape).
	SpeedupVsSerial   float64 `json:"speedup_vs_serial,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// StagePercentiles is one pipeline stage's per-slide latency profile.
type StagePercentiles struct {
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// PipeRow is one full-pipeline configuration's measurement.
type PipeRow struct {
	Shards int                         `json:"shards"`
	Slides int                         `json:"slides"`
	Alerts int                         `json:"alerts"`
	Stages map[string]StagePercentiles `json:"stages"`
}

// Artifact is the benchmark report written to -out.
type Artifact struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Quick       bool   `json:"quick,omitempty"`

	Vessels int     `json:"vessels"`
	Hours   float64 `json:"hours"`
	Fixes   int     `json:"fixes"`
	Slides  int     `json:"slides"`

	Baseline TrackRow     `json:"baseline_serial_presharding"`
	Tracking []TrackRow   `json:"tracking"`
	Pipeline []PipeRow    `json:"pipeline"`
	Cluster  []ClusterRow `json:"cluster,omitempty"`

	Notes string `json:"notes"`
}

func main() {
	vessels := flag.Int("vessels", baselineVessels, "fleet size")
	hours := flag.Float64("hours", baselineHours, "simulated duration in hours")
	shardsCSV := flag.String("shards", "", "comma-separated shard counts (default 1,2,4 and GOMAXPROCS)")
	reps := flag.Int("reps", 20, "tracking-tier repetitions per shard count")
	clusterCSV := flag.String("cluster", "1,3", "comma-separated cluster widths for the distributed-tier rows (empty = skip)")
	quick := flag.Bool("quick", false, "small CI smoke run (overrides vessels/hours/reps)")
	out := flag.String("out", "BENCH_pipeline.json", "artifact path")
	flag.Parse()

	if *quick {
		*vessels, *hours, *reps = 120, 1, 3
		if *clusterCSV == "1,3" {
			*clusterCSV = "2"
		}
	}
	shardCounts := parseShards(*shardsCSV, *quick)

	log.Printf("simulating %d vessels for %.1f h ...", *vessels, *hours)
	simCfg := fleetsim.DefaultConfig()
	simCfg.Seed = 42
	simCfg.Vessels = *vessels
	simCfg.Duration = time.Duration(float64(time.Hour) * *hours)
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()
	batches := batchAll(fixes, 5*time.Minute)
	log.Printf("%d fixes over %d slides", len(fixes), len(batches))

	art := &Artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       *quick,
		Vessels:     *vessels,
		Hours:       *hours,
		Fixes:       len(fixes),
		Slides:      len(batches),
		Baseline: TrackRow{
			Shards:         1,
			NsPerSlide:     baselineNsPerSlide,
			AllocsPerSlide: baselineAllocsPerSlide,
			BytesPerSlide:  baselineBytesPerSlide,
		},
		Notes: "baseline_serial_presharding was measured before the sharded tier " +
			"and hot-path allocation work, on the default workload (400 vessels, 2 h, 1 CPU); " +
			"speedup_vs_baseline is meaningful only on that workload shape. " +
			"Multi-shard speedup requires gomaxprocs > 1.",
	}

	// Tracking tier in isolation.
	var serialNs float64
	for _, n := range shardCounts {
		row := benchTracking(batches, len(fixes), n, *reps)
		if n == 1 {
			serialNs = row.NsPerSlide
		}
		if serialNs > 0 {
			row.SpeedupVsSerial = serialNs / row.NsPerSlide
		}
		if *vessels == baselineVessels && *hours == baselineHours {
			row.SpeedupVsBaseline = baselineNsPerSlide / row.NsPerSlide
		}
		log.Printf("tracking shards=%d: %.0f ns/slide, %.1f allocs/slide, %.2fx vs serial",
			n, row.NsPerSlide, row.AllocsPerSlide, row.SpeedupVsSerial)
		art.Tracking = append(art.Tracking, row)
	}

	// Full pipeline with per-stage percentiles.
	world := fleetsim.NewSimulator(simCfg) // fresh simulator: AdaptWorld reads its areas
	world.Run()
	for _, n := range shardCounts {
		row := benchPipeline(world, batches, n)
		log.Printf("pipeline shards=%d: tracking p95 %.0f µs, recognition p95 %.0f µs, %d alerts",
			n, row.Stages["tracking"].P95Us, row.Stages["recognition"].P95Us, row.Alerts)
		art.Pipeline = append(art.Pipeline, row)
	}

	// Distributed tiers: router + workers + coordinator over loopback
	// TCP, against the single-process reference on the same stream. On a
	// one-box run this prices the wire hops and the merge barrier; real
	// scaling needs the workers on their own machines/CPUs.
	if widths := parseWidths(*clusterCSV); len(widths) > 0 {
		art.Cluster = benchClusterAll(simCfg, fixes, widths)
		art.Notes += " Cluster rows run every tier in one process over loopback; " +
			"workers=0 is the single-process reference, overhead_vs_single prices the wire + merge barrier on this box."
	}

	if err := writeArtifact(*out, art); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// parseShards resolves the shard counts to benchmark, deduplicated and
// ascending. The default covers the serial reference, small counts and
// the machine's width.
func parseShards(csv string, quick bool) []int {
	var counts []int
	if csv == "" {
		counts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
		if quick {
			counts = []int{1, 2}
		}
	} else {
		for _, s := range strings.Split(csv, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 0 {
				log.Fatalf("bad -shards entry %q", s)
			}
			if n == 0 {
				n = tracker.DefaultShards()
			}
			counts = append(counts, n)
		}
	}
	slices.Sort(counts)
	return slices.Compact(counts)
}

// batchAll slices the stream into window slides once; all benchmark
// runs replay the same batches.
func batchAll(fixes []ais.Fix, slide time.Duration) []stream.Batch {
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), slide)
	var batches []stream.Batch
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	return batches
}

// benchTracking replays the batches through a fresh sharded tier reps
// times and reports per-slide cost and allocation pressure.
func benchTracking(batches []stream.Batch, fixes, shards, reps int) TrackRow {
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	params := tracker.DefaultParams()

	run := func() {
		tr := tracker.NewSharded(params, window, shards)
		for _, b := range batches {
			tr.Slide(b)
		}
		tr.Close()
	}
	run() // warmup

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < reps; r++ {
		run()
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)

	slides := reps * len(batches)
	return TrackRow{
		Shards:         shards,
		NsPerSlide:     float64(dur.Nanoseconds()) / float64(slides),
		AllocsPerSlide: float64(m1.Mallocs-m0.Mallocs) / float64(slides),
		BytesPerSlide:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(slides),
		FixesPerSec:    float64(reps*fixes) / dur.Seconds(),
	}
}

// benchPipeline runs the full system once and distills per-stage
// latency percentiles from the slide reports.
func benchPipeline(sim *fleetsim.Simulator, batches []stream.Batch, shards int) PipeRow {
	vessels, areas, ports := core.AdaptWorld(sim)
	sys := core.NewSystem(core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute},
		Tracker:       tracker.DefaultParams(),
		Recognition:   maritime.Config{Window: time.Hour},
		TrackerShards: shards,
	}, vessels, areas, ports)
	defer sys.Close()

	byStage := map[string][]time.Duration{}
	row := PipeRow{Shards: shards, Slides: len(batches), Stages: map[string]StagePercentiles{}}
	for _, b := range batches {
		rep := sys.ProcessBatch(b)
		row.Alerts += len(rep.Alerts)
		byStage["tracking"] = append(byStage["tracking"], rep.Timings.Tracking)
		byStage["staging"] = append(byStage["staging"], rep.Timings.Staging)
		byStage["reconstruction"] = append(byStage["reconstruction"], rep.Timings.Reconstruction)
		byStage["loading"] = append(byStage["loading"], rep.Timings.Loading)
		byStage["recognition"] = append(byStage["recognition"], rep.Timings.Recognition)
		byStage["total"] = append(byStage["total"], rep.Timings.Total())
	}
	for stage, ds := range byStage {
		row.Stages[stage] = percentiles(ds)
	}
	return row
}

// percentiles distills a latency sample into the artifact's profile.
func percentiles(ds []time.Duration) StagePercentiles {
	slices.Sort(ds)
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i].Nanoseconds()) / 1e3
	}
	return StagePercentiles{
		P50Us: at(0.50), P95Us: at(0.95), P99Us: at(0.99), MaxUs: at(1.0),
	}
}

// writeArtifact marshals the report.
func writeArtifact(path string, art *Artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
