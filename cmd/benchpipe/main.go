// benchpipe benchmarks the surveillance pipeline end to end: the
// sharded mobility-tracking tier in isolation (throughput and
// allocation pressure per slide, across shard counts) and the full
// core.System (per-stage latency percentiles). It writes a JSON
// artifact, BENCH_pipeline.json, comparing every configuration against
// the pre-sharding serial baseline embedded below, so a run on any
// machine shows both the scaling curve of this build and the distance
// to the old code.
//
//	go run ./cmd/benchpipe                        # full run, writes BENCH_pipeline.json
//	go run ./cmd/benchpipe -quick -out /dev/null  # CI smoke
//	go run ./cmd/benchpipe -shards 1,2,4,8 -vessels 1000 -hours 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// Pre-sharding serial baseline, measured on this repository immediately
// before the sharded tier and the zero-alloc hot path landed (tracker
// commit parent of the sharding change; fleetsim seed 42, 400 vessels,
// 2 h, ω = 1 h, β = 5 min → 17 898 fixes over 24 slides; single CPU).
// Kept as reference so any later run can report an honest speedup and
// allocation delta against the old code on the same workload shape.
const (
	baselineNsPerSlide     = 825000.0
	baselineAllocsPerSlide = 491.5
	baselineBytesPerSlide  = 115788.0
	baselineVessels        = 400
	baselineHours          = 2
	// The baseline workload's volume, fixed by seed 42: fixes per slide
	// over ns per slide gives the serial baseline's throughput.
	baselineFixes  = 17898
	baselineSlides = 24
)

// baselineFixesPerSec derives the throughput the serial baseline
// sustained — the field was originally recorded as 0 because only
// ns_per_slide was measured, but the workload volume pins it exactly.
const baselineFixesPerSec = (baselineFixes / float64(baselineSlides)) / baselineNsPerSlide * 1e9

// TrackRow is one tracking-tier configuration's measurement.
type TrackRow struct {
	// Mode distinguishes the ingest layout and measurement framing:
	// "row" and "columnar" replay the workload through a fresh tier
	// (cold start included); "columnar-steady" replays it through one
	// warm tier as consecutive stretches of stream time, the regime a
	// long-running deployment sits in.
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	NsPerSlide     float64 `json:"ns_per_slide"`
	AllocsPerSlide float64 `json:"allocs_per_slide"`
	BytesPerSlide  float64 `json:"bytes_per_slide"`
	FixesPerSec    float64 `json:"fixes_per_sec"`
	// SpeedupVsSerial is this row's throughput over the 1-shard row of
	// the same run; SpeedupVsBaseline is over the embedded pre-sharding
	// constants (only comparable on the baseline workload shape).
	SpeedupVsSerial   float64 `json:"speedup_vs_serial,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// DecodeRow is one scanner-decode configuration's measurement.
type DecodeRow struct {
	Format       string  `json:"format"`  // nmea | csv
	Decoder      string  `json:"decoder"` // zerocopy | legacy
	NsPerFix     float64 `json:"ns_per_fix"`
	AllocsPerFix float64 `json:"allocs_per_fix"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// StagePercentiles is one pipeline stage's per-slide latency profile.
type StagePercentiles struct {
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// PipeRow is one full-pipeline configuration's measurement.
type PipeRow struct {
	Shards int                         `json:"shards"`
	Slides int                         `json:"slides"`
	Alerts int                         `json:"alerts"`
	Stages map[string]StagePercentiles `json:"stages"`
}

// Artifact is the benchmark report written to -out.
type Artifact struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Quick       bool   `json:"quick,omitempty"`

	Vessels int     `json:"vessels"`
	Hours   float64 `json:"hours"`
	Fixes   int     `json:"fixes"`
	Slides  int     `json:"slides"`

	Baseline TrackRow     `json:"baseline_serial_presharding"`
	Tracking []TrackRow   `json:"tracking"`
	Decode   []DecodeRow  `json:"decode,omitempty"`
	Pipeline []PipeRow    `json:"pipeline"`
	Cluster  []ClusterRow `json:"cluster,omitempty"`

	Notes string `json:"notes"`
}

func main() {
	vessels := flag.Int("vessels", baselineVessels, "fleet size")
	hours := flag.Float64("hours", baselineHours, "simulated duration in hours")
	shardsCSV := flag.String("shards", "", "comma-separated shard counts (default 1,2,4 and GOMAXPROCS)")
	reps := flag.Int("reps", 20, "tracking-tier repetitions per shard count")
	clusterCSV := flag.String("cluster", "1,3", "comma-separated cluster widths for the distributed-tier rows (empty = skip)")
	quick := flag.Bool("quick", false, "small CI smoke run (overrides vessels/hours/reps)")
	out := flag.String("out", "BENCH_pipeline.json", "artifact path")
	flag.Parse()

	if *quick {
		*vessels, *hours, *reps = 120, 1, 3
		if *clusterCSV == "1,3" {
			*clusterCSV = "2"
		}
	}
	shardCounts := parseShards(*shardsCSV, *quick)

	log.Printf("simulating %d vessels for %.1f h ...", *vessels, *hours)
	simCfg := fleetsim.DefaultConfig()
	simCfg.Seed = 42
	simCfg.Vessels = *vessels
	simCfg.Duration = time.Duration(float64(time.Hour) * *hours)
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()
	batches := batchAll(fixes, 5*time.Minute)
	log.Printf("%d fixes over %d slides", len(fixes), len(batches))

	art := &Artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       *quick,
		Vessels:     *vessels,
		Hours:       *hours,
		Fixes:       len(fixes),
		Slides:      len(batches),
		Baseline: TrackRow{
			Mode:           "row",
			Shards:         1,
			NsPerSlide:     baselineNsPerSlide,
			AllocsPerSlide: baselineAllocsPerSlide,
			BytesPerSlide:  baselineBytesPerSlide,
			FixesPerSec:    baselineFixesPerSec,
		},
		Notes: "baseline_serial_presharding was measured before the sharded tier " +
			"and hot-path allocation work, on the default workload (400 vessels, 2 h, 1 CPU); " +
			"its fixes_per_sec is derived from ns_per_slide and the workload volume. " +
			"Tracking-row timings are the median over -reps repetitions (robust to scheduler " +
			"interference on shared boxes); allocation columns are means, alloc counts being " +
			"deterministic. " +
			"speedup_vs_baseline is meaningful only on that workload shape. " +
			"Multi-shard speedup requires gomaxprocs > 1. " +
			"row/columnar tracking rows include tier cold start; columnar-steady rows replay " +
			"through one warm tier and measure the long-running steady state. " +
			"The tracker keeps bit-identical IEEE-754 geodesic math across the row, columnar, " +
			"sharded, and snapshot-restore paths (the equivalence goldens pin it), which bounds " +
			"the per-core multiple below the 5x target on this box: the per-fix floor is " +
			"trig-dominated (two half-angle sines, one Sincos, two atan-family calls) plus one " +
			"vessel-map probe, and the best recorded multiple is the columnar-steady row's.",
	}

	// Tracking tier in isolation: row and columnar layouts through a
	// fresh tier, then the steady-state framing through a warm one.
	cols := toColumnarBatches(batches)
	span := time.Duration(float64(time.Hour) * *hours)
	var serialNs float64
	for _, n := range shardCounts {
		for _, mode := range []string{"row", "columnar", "columnar-steady"} {
			var row TrackRow
			switch mode {
			case "row":
				row = benchTracking(batches, len(fixes), n, *reps)
			case "columnar":
				row = benchTracking(cols, len(fixes), n, *reps)
			case "columnar-steady":
				row = benchSteadyTracking(cols, len(fixes), n, *reps, span)
			}
			row.Mode = mode
			if n == 1 && mode == "row" {
				serialNs = row.NsPerSlide
			}
			if serialNs > 0 {
				row.SpeedupVsSerial = serialNs / row.NsPerSlide
			}
			if *vessels == baselineVessels && *hours == baselineHours {
				row.SpeedupVsBaseline = baselineNsPerSlide / row.NsPerSlide
			}
			log.Printf("tracking %s shards=%d: %.0f ns/slide, %.1f allocs/slide, %.2fx vs baseline",
				mode, n, row.NsPerSlide, row.AllocsPerSlide, row.SpeedupVsBaseline)
			art.Tracking = append(art.Tracking, row)
		}
	}

	// Scanner decode micro-benchmark: zero-copy fast path vs the legacy
	// string-based oracle, per input format.
	art.Decode = benchDecodeAll(*quick)
	for _, d := range art.Decode {
		log.Printf("decode %s/%s: %.1f ns/fix, %.2f allocs/fix, %.1f MB/s",
			d.Format, d.Decoder, d.NsPerFix, d.AllocsPerFix, d.MBPerSec)
	}

	// Full pipeline with per-stage percentiles.
	world := fleetsim.NewSimulator(simCfg) // fresh simulator: AdaptWorld reads its areas
	world.Run()
	for _, n := range shardCounts {
		row := benchPipeline(world, batches, n)
		log.Printf("pipeline shards=%d: tracking p95 %.0f µs, recognition p95 %.0f µs, %d alerts",
			n, row.Stages["tracking"].P95Us, row.Stages["recognition"].P95Us, row.Alerts)
		art.Pipeline = append(art.Pipeline, row)
	}

	// Distributed tiers: router + workers + coordinator over loopback
	// TCP, against the single-process reference on the same stream. On a
	// one-box run this prices the wire hops and the merge barrier; real
	// scaling needs the workers on their own machines/CPUs.
	if widths := parseWidths(*clusterCSV); len(widths) > 0 {
		art.Cluster = benchClusterAll(simCfg, fixes, widths)
		art.Notes += " Cluster rows run every tier in one process over loopback; " +
			"workers=0 is the single-process reference, overhead_vs_single prices the wire + merge barrier on this box."
	}

	if err := writeArtifact(*out, art); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// parseShards resolves the shard counts to benchmark, deduplicated and
// ascending. The default covers the serial reference, small counts and
// the machine's width.
func parseShards(csv string, quick bool) []int {
	var counts []int
	if csv == "" {
		counts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
		if quick {
			counts = []int{1, 2}
		}
	} else {
		for _, s := range strings.Split(csv, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 0 {
				log.Fatalf("bad -shards entry %q", s)
			}
			if n == 0 {
				n = tracker.DefaultShards()
			}
			counts = append(counts, n)
		}
	}
	slices.Sort(counts)
	return slices.Compact(counts)
}

// batchAll slices the stream into window slides once; all benchmark
// runs replay the same batches.
func batchAll(fixes []ais.Fix, slide time.Duration) []stream.Batch {
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), slide)
	var batches []stream.Batch
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	return batches
}

// medianDur returns the median of the given durations. Per-rep medians
// are the timing estimator everywhere in this artifact: on a shared box
// a scheduler interference spike inflates a mean arbitrarily, while the
// median tracks the undisturbed repetitions.
func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	slices.Sort(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// benchTracking replays the batches through a fresh sharded tier reps
// times and reports per-slide cost (median over reps) and allocation
// pressure (mean — alloc counts are deterministic, timing is not).
func benchTracking(batches []stream.Batch, fixes, shards, reps int) TrackRow {
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	params := tracker.DefaultParams()

	run := func() {
		tr := tracker.NewSharded(params, window, shards)
		for _, b := range batches {
			tr.Slide(b)
		}
		tr.Close()
	}
	run() // warmup

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	durs := make([]time.Duration, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		run()
		durs[r] = time.Since(start)
	}
	runtime.ReadMemStats(&m1)

	med := medianDur(durs)
	slides := reps * len(batches)
	return TrackRow{
		Shards:         shards,
		NsPerSlide:     float64(med.Nanoseconds()) / float64(len(batches)),
		AllocsPerSlide: float64(m1.Mallocs-m0.Mallocs) / float64(slides),
		BytesPerSlide:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(slides),
		FixesPerSec:    float64(fixes) / med.Seconds(),
	}
}

// toColumnarBatches restages row batches into struct-of-arrays form,
// one FixBatch per slide, preserving query times.
func toColumnarBatches(batches []stream.Batch) []stream.Batch {
	out := make([]stream.Batch, len(batches))
	for i, b := range batches {
		fb := &ais.FixBatch{}
		fb.Grow(len(b.Fixes))
		for _, f := range b.Fixes {
			fb.Append(f)
		}
		out[i] = stream.Batch{Cols: fb, Query: b.Query}
	}
	return out
}

// benchSteadyTracking measures the warm steady state: one tier, fleet
// and window populated by a warm-up pass, then each rep replays the
// workload as the next stretch of stream time (every timestamp advanced
// by the workload span). Cold-start costs — vessel-map growth,
// per-vessel allocation, slice warm-up — are excluded by construction.
func benchSteadyTracking(src []stream.Batch, fixes, shards, reps int, span time.Duration) TrackRow {
	// Deep-copy the columnar batches: the replay advances timestamps in
	// place and must not disturb the other rows' input.
	batches := make([]stream.Batch, len(src))
	for i, b := range src {
		fb := &ais.FixBatch{
			MMSI:   append([]uint32(nil), b.Cols.MMSI...),
			Lon:    append([]float64(nil), b.Cols.Lon...),
			Lat:    append([]float64(nil), b.Cols.Lat...),
			TimeNS: append([]int64(nil), b.Cols.TimeNS...),
		}
		batches[i] = stream.Batch{Cols: fb, Query: b.Query}
	}
	shift := func() {
		for i := range batches {
			batches[i].Query = batches[i].Query.Add(span)
			for j, ns := range batches[i].Cols.TimeNS {
				batches[i].Cols.TimeNS[j] = ns + int64(span)
			}
		}
	}

	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	tr := tracker.NewSharded(tracker.DefaultParams(), window, shards)
	defer tr.Close()
	for _, b := range batches { // warm-up pass populates the tier
		tr.Slide(b)
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	durs := make([]time.Duration, reps)
	for r := 0; r < reps; r++ {
		shift()
		start := time.Now()
		for _, b := range batches {
			tr.Slide(b)
		}
		durs[r] = time.Since(start)
	}
	runtime.ReadMemStats(&m1)

	med := medianDur(durs)
	slides := reps * len(batches)
	return TrackRow{
		Shards:         shards,
		NsPerSlide:     float64(med.Nanoseconds()) / float64(len(batches)),
		AllocsPerSlide: float64(m1.Mallocs-m0.Mallocs) / float64(slides),
		BytesPerSlide:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(slides),
		FixesPerSec:    float64(fixes) / med.Seconds(),
	}
}

// benchDecodeAll measures the Data Scanner's decode cost per fix for
// both input formats and both decoders over a synthetic corpus.
func benchDecodeAll(quick bool) []DecodeRow {
	lines := 20000
	passes := 20
	if quick {
		lines, passes = 4000, 5
	}
	var nmea, csv strings.Builder
	for i := 0; i < lines; i++ {
		r := &ais.PositionReport{Type: ais.TypePositionA, MMSI: uint32(237000000 + i%500),
			Lon: 20.0 + float64(i%800)/100, Lat: 34.0 + float64(i%600)/100,
			SpeedKnots: float64(i % 25)}
		enc, err := ais.EncodeSentences(r, "A", i)
		if err != nil {
			log.Fatalf("encode: %v", err)
		}
		fmt.Fprintf(&nmea, "%d %s\n", 1243814400+i, enc[0])
		fmt.Fprintf(&csv, "%d,%.6f,%.6f,%d\n", 237000000+i%500, 20.0+float64(i%800)/100,
			34.0+float64(i%600)/100, 1243814400+i)
	}

	var rows []DecodeRow
	for _, format := range []string{"nmea", "csv"} {
		input := nmea.String()
		if format == "csv" {
			input = csv.String()
		}
		for _, decoder := range []string{"zerocopy", "legacy"} {
			run := func() {
				sc := ais.NewScanner(strings.NewReader(input))
				sc.SetLegacyDecode(decoder == "legacy")
				n := 0
				for sc.Scan() {
					n++
				}
				if n != lines {
					log.Fatalf("decode %s/%s: %d fixes, want %d", format, decoder, n, lines)
				}
			}
			run() // warmup
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for p := 0; p < passes; p++ {
				run()
			}
			dur := time.Since(start)
			runtime.ReadMemStats(&m1)
			total := passes * lines
			rows = append(rows, DecodeRow{
				Format:       format,
				Decoder:      decoder,
				NsPerFix:     float64(dur.Nanoseconds()) / float64(total),
				AllocsPerFix: float64(m1.Mallocs-m0.Mallocs) / float64(total),
				MBPerSec:     float64(passes) * float64(len(input)) / 1e6 / dur.Seconds(),
			})
		}
	}
	return rows
}

// benchPipeline runs the full system once and distills per-stage
// latency percentiles from the slide reports.
func benchPipeline(sim *fleetsim.Simulator, batches []stream.Batch, shards int) PipeRow {
	vessels, areas, ports := core.AdaptWorld(sim)
	sys := core.NewSystem(core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute},
		Tracker:       tracker.DefaultParams(),
		Recognition:   maritime.Config{Window: time.Hour},
		TrackerShards: shards,
	}, vessels, areas, ports)
	defer sys.Close()

	byStage := map[string][]time.Duration{}
	row := PipeRow{Shards: shards, Slides: len(batches), Stages: map[string]StagePercentiles{}}
	for _, b := range batches {
		rep := sys.ProcessBatch(b)
		row.Alerts += len(rep.Alerts)
		byStage["tracking"] = append(byStage["tracking"], rep.Timings.Tracking)
		byStage["staging"] = append(byStage["staging"], rep.Timings.Staging)
		byStage["reconstruction"] = append(byStage["reconstruction"], rep.Timings.Reconstruction)
		byStage["loading"] = append(byStage["loading"], rep.Timings.Loading)
		byStage["recognition"] = append(byStage["recognition"], rep.Timings.Recognition)
		byStage["total"] = append(byStage["total"], rep.Timings.Total())
	}
	for stage, ds := range byStage {
		row.Stages[stage] = percentiles(ds)
	}
	return row
}

// percentiles distills a latency sample into the artifact's profile.
func percentiles(ds []time.Duration) StagePercentiles {
	slices.Sort(ds)
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i].Nanoseconds()) / 1e3
	}
	return StagePercentiles{
		P50Us: at(0.50), P95Us: at(0.95), P99Us: at(0.99), MaxUs: at(1.0),
	}
}

// writeArtifact marshals the report.
func writeArtifact(path string, art *Artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
