// Command tracker runs online trajectory detection (paper §3) over an
// AIS dataset: it replays the positional stream through a sliding
// window, emits annotated critical points, and reports compression and
// performance statistics. Critical points can be exported as CSV, KML,
// or GeoJSON.
//
// Usage:
//
//	aisgen -vessels 200 -hours 6 | tracker -window 1h -slide 10m -out points.csv
//	tracker -in fleet.csv -kml out.kml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/export"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracker: ")

	var (
		in      = flag.String("in", "-", "input dataset (CSV or timestamped NMEA), - for stdin")
		window  = flag.Duration("window", time.Hour, "window range ω")
		slide   = flag.Duration("slide", 10*time.Minute, "window slide β")
		turnDeg = flag.Float64("turn", 15, "turn threshold Δθ in degrees")
		outCSV  = flag.String("out", "", "write critical points as CSV to this file (- for stdout)")
		outKML  = flag.String("kml", "", "write critical points as KML to this file")
		outJSON = flag.String("geojson", "", "write critical points as GeoJSON to this file")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = bufio.NewReaderSize(f, 1<<20)
	}

	params := tracker.DefaultParams()
	params.TurnThresholdDeg = *turnDeg
	spec := stream.WindowSpec{Range: *window, Slide: *slide}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	tr := tracker.New(params, spec)

	scanner := ais.NewScanner(r)
	batcher := stream.NewBatcher(scanner, *slide)

	var all []tracker.CriticalPoint
	slides := 0
	var totalTracking time.Duration
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		res := tr.Slide(b)
		totalTracking += time.Since(t0)
		slides++
		all = append(all, res.Fresh...)
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}

	st := tr.Stats()
	sc := scanner.Stats()
	log.Printf("input: %d lines, %d fixes (%d dropped by scanner)", sc.Lines, sc.Fixes, sc.Dropped())
	if sc.VoyageReports > 0 {
		log.Printf("collected %d static/voyage reports for %d vessels (declared destinations are untrusted, paper §3.2)",
			sc.VoyageReports, len(scanner.Voyages()))
	}
	log.Printf("tracked: %d fixes → %d critical points (compression %.1f%%), %d outliers rejected",
		st.FixesIn, st.Critical, st.CompressionRatio()*100, st.Outliers)
	log.Printf("window %s: %d slides, mean tracking cost %s/slide",
		spec, slides, meanDuration(totalTracking, slides))
	for et, n := range st.ByType {
		log.Printf("  %-12s %d", et, n)
	}
	// The §3.1 odometer extension: traveled distance per vessel.
	var farthest uint32
	var farthestM float64
	for _, cp := range all {
		if total, _, ok := tr.Odometer(cp.MMSI); ok && total > farthestM {
			farthest, farthestM = cp.MMSI, total
		}
	}
	if farthestM > 0 {
		log.Printf("farthest still-tracked vessel: %d at %.1f km traveled", farthest, farthestM/1000)
	}

	writeOut := func(path string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		var w io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			bw := bufio.NewWriter(f)
			defer bw.Flush()
			w = bw
		}
		if err := write(w); err != nil {
			log.Fatal(err)
		}
	}
	writeOut(*outCSV, func(w io.Writer) error { return export.WriteCSV(w, all) })
	writeOut(*outKML, func(w io.Writer) error { return export.WriteKML(w, "vessel trajectories", all) })
	writeOut(*outJSON, func(w io.Writer) error { return export.WriteGeoJSON(w, all) })
	if *outCSV == "" && *outKML == "" && *outJSON == "" {
		fmt.Fprintln(os.Stderr, "tracker: no output selected; pass -out/-kml/-geojson to export")
	}
}

func meanDuration(total time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
