// Command recognize runs the full surveillance pipeline (paper
// Figure 1): fleet stream → mobility tracking → complex event
// recognition → trajectory archival, printing recognized complex events
// as they are detected and summary statistics at the end.
//
// The static world knowledge (areas of interest, vessel registry,
// ports) is regenerated from the simulator seed, so when reading a
// dataset produced by aisgen the -seed/-vessels/-areas flags must match
// the ones used there.
//
// With -checkpoint-dir the run is crash-safe: the pipeline state is
// checkpointed atomically every -checkpoint-every slides (and once more
// on SIGINT/SIGTERM), and a restart with the same flags restores the
// newest valid checkpoint and replays the stream from its cursor —
// every fix processed exactly once across the crash.
//
// Usage:
//
//	recognize -vessels 300 -hours 6                 # self-contained run
//	aisgen -vessels 300 -hours 6 > f.csv
//	recognize -in f.csv -vessels 300                # same world, same results
//	recognize -in f.csv -checkpoint-dir ckpt        # kill -9 and rerun: resumes
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ais"
	"repro/internal/analytics"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recognize: ")

	var (
		in        = flag.String("in", "", "input dataset (CSV/NMEA); empty = simulate internally")
		live      = flag.String("feed", "", "consume a live feed at this address (see cmd/feed) instead of a file")
		vessels   = flag.Int("vessels", 300, "fleet size (must match aisgen when -in is used)")
		hours     = flag.Float64("hours", 6, "simulated duration (internal runs only)")
		seed      = flag.Int64("seed", 1, "world/fleet seed")
		areas     = flag.Int("areas", 35, "areas of interest")
		window    = flag.Duration("window", time.Hour, "window range ω")
		slide     = flag.Duration("slide", 10*time.Minute, "window slide β")
		facts     = flag.Bool("spatial-facts", false, "use precomputed spatial facts (Fig. 11(b) mode)")
		procs     = flag.Int("procs", 1, "partition CE recognition across this many parallel recognizers")
		shards    = flag.Int("shards", 0, "mobility-tracker shards (0 = one per CPU, 1 = serial)")
		quiet     = flag.Bool("quiet", false, "suppress per-alert output")
		watchdog  = flag.Duration("watchdog", 0, "per-slide recognition budget; wedged partitions are abandoned (0 = off)")
		selfHeal  = flag.Bool("self-heal", false, "recover panics and wedged partitions by quarantine-and-restore instead of crashing (batch runs default to fail-fast)")
		degrade   = flag.Bool("degrade", false, "shed work under overload (defer archival → instantaneous-only recognition → shed stationary vessels); meaningful for live feeds")
		degSlide  = flag.Duration("degrade-slide-high", 0, "per-slide cost above which the pipeline degrades (0 = 80% of -slide)")
		degDepth  = flag.Int("degrade-depth-high", 0, "ingest-backlog depth above which the pipeline degrades (0 = 3/4 of -ingest-buffer)")
		ingest    = flag.Int("ingest-buffer", 8192, "bounded ingest buffer for live feeds, in fixes (0 = unbuffered)")
		debug     = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while the run lasts (empty = off)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory for crash-safe restart (empty = off)")
		ckptEvery = flag.Int("checkpoint-every", 6, "slides between checkpoints")
		pairwise  = flag.Bool("pairwise", false, "run the cross-vessel analytics tier (rendezvous, dark gap linking, collision screening)")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	mode := maritime.SpatialOnDemand
	if *facts {
		mode = maritime.SpatialFacts
	}
	// ingestBuf is assigned once the live ingest path is built (before
	// the pipeline starts sliding); the degradation ladder reads its
	// backlog.
	var ingestBuf *stream.IngestBuffer
	sysCfg := core.Config{
		Window:          stream.WindowSpec{Range: *window, Slide: *slide},
		Tracker:         tracker.DefaultParams(),
		Recognition:     maritime.Config{Window: *window, Mode: mode},
		Processors:      *procs,
		TrackerShards:   *shards,
		WatchdogTimeout: *watchdog,
		SelfHeal:        *selfHeal,
	}
	if *pairwise {
		sysCfg.Analytics = &analytics.Config{EnableCollision: true}
	}
	if *degrade {
		spec := &core.DegradeSpec{SlideHigh: *degSlide, DepthHigh: *degDepth}
		if spec.SlideHigh <= 0 {
			spec.SlideHigh = *slide * 8 / 10
		}
		if spec.DepthHigh <= 0 && *ingest > 0 {
			spec.DepthHigh = *ingest * 3 / 4
		}
		spec.DepthFunc = func() int {
			if ingestBuf == nil {
				return 0
			}
			return ingestBuf.Pending()
		}
		sysCfg.Degrade = spec
	}
	sys := core.NewSystem(sysCfg, vesselsReg, areasReg, ports)

	// The supervisor repairs quarantined targets between slides:
	// restore-then-replay from the in-memory journal, exponential backoff
	// on repeated failure, give-up past the policy threshold.
	if *selfHeal {
		sup := supervise.New(sys, supervise.Policy{})
		sup.SetLogger(log.Printf)
		sys.OnSlideEnd(func(core.SlideReport) { sup.Poll() })
	}

	var reg *obs.Registry
	if *debug != "" {
		// Batch runs are usually observed through the final summary, but
		// long replays benefit from live stage histograms and pprof: the
		// sidecar exposes both for the duration of the run.
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		sys.RegisterMetrics(reg)
		go func() {
			log.Printf("debug on http://%s  (/metrics /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, obs.DebugMux(reg)); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	// Crash safety: restore the newest valid checkpoint before touching
	// the stream, then replay from its cursor below. Invalid files are
	// skipped (reported, never fatal); none at all is a cold start.
	var mgr *checkpoint.Manager
	var restored *checkpoint.State
	if *ckptDir != "" {
		var err error
		mgr, err = checkpoint.NewManager(checkpoint.Options{Dir: *ckptDir})
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			mgr.RegisterMetrics(reg)
		}
		restored, err = mgr.RestoreNewest()
		if err != nil {
			log.Printf("checkpoint: skipped invalid files: %v", err)
		}
		if restored != nil {
			if err := sys.RestoreSnapshot(restored.System); err != nil {
				log.Fatalf("checkpoint: restore: %v", err)
			}
			log.Printf("restored checkpoint: %d slides, query %s", restored.Slides, restored.Query.Format(time.RFC3339))
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var src stream.FixSource
	var client *feed.ReconnectingClient
	var resume *feed.ResumeFilter
	switch {
	case *live != "":
		// The reconnecting client survives transport faults: it re-dials
		// with backoff and resumes from the last fix it saw, and the
		// bounded ingest buffer keeps a slow slide from exerting
		// backpressure onto the wire. A restored run seeds the very first
		// connection with the checkpoint cursor, so the RESUME handshake
		// skips everything already processed.
		var err error
		if restored != nil {
			client, err = feed.DialReconnectingFrom(*live, feed.DefaultRetryPolicy(), restored.Cursor)
		} else {
			client, err = feed.DialReconnecting(*live, feed.DefaultRetryPolicy())
		}
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		log.Printf("consuming live feed at %s", *live)
		if reg != nil {
			client.RegisterMetrics(reg)
		}
		src = client
		if *ingest > 0 {
			ingestBuf = stream.NewIngestBuffer(client, *ingest)
			defer ingestBuf.Close()
			if reg != nil {
				ingestBuf.RegisterMetrics(reg)
			}
			src = ingestBuf
		}
		sys.AddHealthSource(core.LiveHealthSource(client, ingestBuf))
		// Graceful shutdown: closing the client ends Scan, the loop
		// finishes its in-flight batch, and the final checkpoint runs.
		go func() {
			<-ctx.Done()
			client.Close()
		}()
	case *in == "":
		src = stream.NewSliceSource(sim.Run())
	default:
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = ais.NewScanner(bufio.NewReaderSize(f, 1<<20))
	}
	if restored != nil && client == nil {
		// Offline replay: the file or simulation starts at the beginning;
		// the resume filter discards the prefix the cursor covers.
		resume = feed.NewResumeFilter(src, restored.Cursor)
		src = resume
	}

	// Alert formatting goes through the shared sink instead of a
	// driver-local printing loop.
	if !*quiet {
		sys.AddAlertSink(core.NewWriterSink(os.Stdout, ""))
	}

	// A checkpoint older than the feed's replayable horizon resumes with
	// a partial replay; the gap is surfaced through Health, not silently
	// closed. Atomic because /healthz and /metrics scrape concurrently.
	var replayGap atomic.Int64
	if restored != nil {
		sys.AddHealthSource(func() core.Health {
			return core.Health{ReplayGapSlides: int(replayGap.Load())}
		})
	}

	var batcher *stream.Batcher
	var cur feed.Cursor
	baseSlides := 0
	if restored != nil {
		// Continue on the original slide grid: slides between the
		// checkpoint and the first replayed fix still run (empty), so gap
		// detection behaves as in the uninterrupted run.
		batcher = stream.NewBatcherFrom(src, *slide, restored.Query)
		cur = restored.Cursor.Clone()
		baseSlides = restored.Slides
	} else {
		batcher = stream.NewBatcher(src, *slide)
	}

	saveCkpt := func(q time.Time, slides int) {
		snap, err := sys.Snapshot()
		if err != nil {
			log.Printf("checkpoint: %v", err)
			return
		}
		st := &checkpoint.State{Query: q, System: snap, Cursor: cur.Clone(), Slides: slides}
		if err := mgr.Save(st); err != nil {
			log.Printf("checkpoint: %v", err)
		}
	}

	var totalAlerts, slides int
	var recogTime time.Duration
	var lastQuery, firstTraffic time.Time
	for {
		b, ok := batcher.Next()
		if !ok || ctx.Err() != nil {
			// On interrupt the batch in flight may have been truncated by
			// the closing source; discard it so the final checkpoint sits
			// on a complete-slide boundary and the cursor replays it whole.
			break
		}
		rep := sys.ProcessBatch(b)
		for _, f := range b.Fixes {
			cur.Note(f)
		}
		slides++
		recogTime += rep.Timings.Recognition
		totalAlerts += len(rep.Alerts)
		lastQuery = rep.Query
		if restored != nil && firstTraffic.IsZero() && len(b.Fixes) > 0 {
			firstTraffic = b.Query
			replayGap.Store(int64(checkpoint.ReplayGapSlides(restored.Query, firstTraffic, *slide)))
		}
		if mgr != nil && *ckptEvery > 0 && slides%*ckptEvery == 0 {
			saveCkpt(rep.Query, baseSlides+slides)
		}
	}
	interrupted := ctx.Err() != nil
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}
	if mgr != nil {
		// Final checkpoint before Drain: Drain finalizes trips a resumed
		// run would otherwise re-derive differently, so the durable state
		// must predate it.
		if !lastQuery.IsZero() {
			saveCkpt(lastQuery, baseSlides+slides)
		}
		skipped := 0
		if resume != nil {
			skipped = resume.Skipped()
		} else if client != nil {
			skipped = client.NetStats().ResumeSkipped
		}
		mgr.NoteReplaySkipped(skipped)
		if restored != nil {
			log.Printf("resumed: replay discarded %d already-processed fixes", skipped)
		}
	}
	if interrupted {
		// Interrupted runs intend to resume: leave the pipeline state as
		// checkpointed, do not finalize trips.
		log.Printf("interrupted after %d slides; state checkpointed, rerun to resume", baseSlides+slides)
		return
	}
	sys.Drain(time.Now())

	st := sys.Tracker().Stats()
	log.Printf("tracked %d fixes → %d critical points (compression %.1f%%)",
		st.FixesIn, st.Critical, st.CompressionRatio()*100)
	log.Printf("recognized %d complex events over %d slides (mean recognition %s/slide)",
		totalAlerts, slides, recogTime/time.Duration(max(1, slides)))
	t4 := sys.Store().Table4Stats()
	log.Printf("archived %d trips (%d points; %d still staged)",
		t4.Trips, t4.PointsInTrajectories, t4.PointsInStaging)
	if *live != "" || *watchdog > 0 || restored != nil || *selfHeal {
		log.Printf("health: %s", sys.Health())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
