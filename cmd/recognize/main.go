// Command recognize runs the full surveillance pipeline (paper
// Figure 1): fleet stream → mobility tracking → complex event
// recognition → trajectory archival, printing recognized complex events
// as they are detected and summary statistics at the end.
//
// The static world knowledge (areas of interest, vessel registry,
// ports) is regenerated from the simulator seed, so when reading a
// dataset produced by aisgen the -seed/-vessels/-areas flags must match
// the ones used there.
//
// Usage:
//
//	recognize -vessels 300 -hours 6                 # self-contained run
//	aisgen -vessels 300 -hours 6 > f.csv
//	recognize -in f.csv -vessels 300                # same world, same results
package main

import (
	"bufio"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recognize: ")

	var (
		in       = flag.String("in", "", "input dataset (CSV/NMEA); empty = simulate internally")
		live     = flag.String("feed", "", "consume a live feed at this address (see cmd/feed) instead of a file")
		vessels  = flag.Int("vessels", 300, "fleet size (must match aisgen when -in is used)")
		hours    = flag.Float64("hours", 6, "simulated duration (internal runs only)")
		seed     = flag.Int64("seed", 1, "world/fleet seed")
		areas    = flag.Int("areas", 35, "areas of interest")
		window   = flag.Duration("window", time.Hour, "window range ω")
		slide    = flag.Duration("slide", 10*time.Minute, "window slide β")
		facts    = flag.Bool("spatial-facts", false, "use precomputed spatial facts (Fig. 11(b) mode)")
		procs    = flag.Int("procs", 1, "partition CE recognition across this many parallel recognizers")
		shards   = flag.Int("shards", 0, "mobility-tracker shards (0 = one per CPU, 1 = serial)")
		quiet    = flag.Bool("quiet", false, "suppress per-alert output")
		watchdog = flag.Duration("watchdog", 0, "per-slide recognition budget; wedged partitions are abandoned (0 = off)")
		ingest   = flag.Int("ingest-buffer", 8192, "bounded ingest buffer for live feeds, in fixes (0 = unbuffered)")
		debug    = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while the run lasts (empty = off)")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	mode := maritime.SpatialOnDemand
	if *facts {
		mode = maritime.SpatialFacts
	}
	sys := core.NewSystem(core.Config{
		Window:          stream.WindowSpec{Range: *window, Slide: *slide},
		Tracker:         tracker.DefaultParams(),
		Recognition:     maritime.Config{Window: *window, Mode: mode},
		Processors:      *procs,
		TrackerShards:   *shards,
		WatchdogTimeout: *watchdog,
	}, vesselsReg, areasReg, ports)

	var reg *obs.Registry
	if *debug != "" {
		// Batch runs are usually observed through the final summary, but
		// long replays benefit from live stage histograms and pprof: the
		// sidecar exposes both for the duration of the run.
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		sys.RegisterMetrics(reg)
		go func() {
			log.Printf("debug on http://%s  (/metrics /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, obs.DebugMux(reg)); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	var src stream.FixSource
	switch {
	case *live != "":
		// The reconnecting client survives transport faults: it re-dials
		// with backoff and resumes from the last fix it saw, and the
		// bounded ingest buffer keeps a slow slide from exerting
		// backpressure onto the wire.
		c, err := feed.DialReconnecting(*live, feed.DefaultRetryPolicy())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		log.Printf("consuming live feed at %s", *live)
		if reg != nil {
			c.RegisterMetrics(reg)
		}
		src = c
		var buf *stream.IngestBuffer
		if *ingest > 0 {
			buf = stream.NewIngestBuffer(c, *ingest)
			defer buf.Close()
			if reg != nil {
				buf.RegisterMetrics(reg)
			}
			src = buf
		}
		sys.AddHealthSource(core.LiveHealthSource(c, buf))
	case *in == "":
		src = stream.NewSliceSource(sim.Run())
	default:
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = ais.NewScanner(bufio.NewReaderSize(f, 1<<20))
	}

	// Alert formatting goes through the shared sink instead of a
	// driver-local printing loop.
	if !*quiet {
		sys.AddAlertSink(core.NewWriterSink(os.Stdout, ""))
	}

	batcher := stream.NewBatcher(src, *slide)
	var totalAlerts, slides int
	var recogTime time.Duration
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		slides++
		recogTime += rep.Timings.Recognition
		totalAlerts += len(rep.Alerts)
	}
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}
	sys.Drain(time.Now())

	st := sys.Tracker().Stats()
	log.Printf("tracked %d fixes → %d critical points (compression %.1f%%)",
		st.FixesIn, st.Critical, st.CompressionRatio()*100)
	log.Printf("recognized %d complex events over %d slides (mean recognition %s/slide)",
		totalAlerts, slides, recogTime/time.Duration(max(1, slides)))
	t4 := sys.Store().Table4Stats()
	log.Printf("archived %d trips (%d points; %d still staged)",
		t4.Trips, t4.PointsInTrajectories, t4.PointsInStaging)
	if *live != "" || *watchdog > 0 {
		log.Printf("health: %s", sys.Health())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
