// Command serveload is the fan-out load harness: it drives many
// concurrent SSE subscribers against a running alert gateway
// (cmd/serve) and reports aggregate delivery throughput and the tail
// of the publish→receive latency distribution — the measurement behind
// the ROADMAP's "serve heavy traffic" goal.
//
//	serve -vessels 300 -speedup 0 &            # a gateway under load
//	serveload -url http://127.0.0.1:8080 -subs 5000 -duration 15s
package main

import (
	"context"
	"flag"
	"log"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveload: ")

	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
		subs     = flag.Int("subs", 1000, "concurrent SSE subscribers")
		duration = flag.Duration("duration", 15*time.Second, "run length")
		query    = flag.String("filter", "", "raw filter query for /events, e.g. mmsi=237000101 or ce=illegalShipping")
	)
	flag.Parse()

	log.Printf("driving %d subscribers against %s for %s", *subs, *url, *duration)
	rep := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:     *url,
		Subscribers: *subs,
		Duration:    *duration,
		Query:       *query,
	})
	log.Print(rep)
}
