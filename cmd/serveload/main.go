// Command serveload is the fan-out load harness: it drives many
// concurrent SSE subscribers against a running alert gateway
// (cmd/serve) — or a set of serving endpoints including `-replica`
// nodes — and reports aggregate delivery throughput and the tail of
// the publish→receive latency distribution — the measurement behind
// the ROADMAP's "serve heavy traffic" goal.
//
//	serve -vessels 300 -speedup 0 &            # a gateway under load
//	serveload -url http://127.0.0.1:8080 -subs 5000 -duration 15s
//
// Spread subscribers round-robin over the writer plus its replicas,
// and record the run in the benchmark artifact:
//
//	serveload -urls http://127.0.0.1:8080,http://127.0.0.1:8081 \
//	    -subs 5000 -duration 15s -out BENCH_serve.json
//
// With -out, the run lands as a `ServeLoad/replicas=N,subs=M` row
// under the artifact's "serveload" key, merged in place so the rows
// benchserve wrote survive.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

// serveLoadRow is one recorded load run in the artifact.
type serveLoadRow struct {
	Name        string  `json:"name"`
	Replicas    int     `json:"replicas"`
	Subscribers int     `json:"subscribers"`
	DurationS   float64 `json:"duration_s"`
	Events      uint64  `json:"events"`
	RateEvS     float64 `json:"rate_ev_s"`
	Errors      int     `json:"errors"`
	P50Us       int64   `json:"p50_us"`
	P95Us       int64   `json:"p95_us"`
	P99Us       int64   `json:"p99_us"`
	MaxUs       int64   `json:"max_us"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serveload: ")

	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
		urls     = flag.String("urls", "", "comma-separated serving endpoints (writer and/or replicas); overrides -url")
		subs     = flag.Int("subs", 1000, "concurrent SSE subscribers")
		duration = flag.Duration("duration", 15*time.Second, "run length")
		query    = flag.String("filter", "", "raw filter query for /events, e.g. mmsi=237000101 or ce=illegalShipping")
		out      = flag.String("out", "", "merge the run into this benchmark artifact (e.g. BENCH_serve.json)")
	)
	flag.Parse()

	opt := serve.LoadOptions{
		BaseURL:     *url,
		Subscribers: *subs,
		Duration:    *duration,
		Query:       *query,
	}
	if *urls != "" {
		for _, u := range strings.Split(*urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				opt.BaseURLs = append(opt.BaseURLs, u)
			}
		}
	}
	targets := opt.BaseURLs
	if len(targets) == 0 {
		targets = []string{opt.BaseURL}
	}

	log.Printf("driving %d subscribers against %s for %s", *subs, strings.Join(targets, ", "), *duration)
	rep := serve.RunLoad(context.Background(), opt)
	log.Print(rep)
	for i, n := range rep.PerReplica {
		log.Printf("  %s: %d events", targets[i], n)
	}

	if *out != "" {
		if err := mergeArtifact(*out, rep); err != nil {
			log.Fatalf("recording run: %v", err)
		}
		log.Printf("recorded run in %s", *out)
	}
}

// mergeArtifact loads the benchmark artifact, replaces (or appends) the
// row named for this replica/subscriber combination under its
// "serveload" key, and writes the document back without disturbing any
// other key.
func mergeArtifact(path string, rep serve.LoadReport) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	var rows []serveLoadRow
	if raw, ok := doc["serveload"]; ok {
		if err := json.Unmarshal(raw, &rows); err != nil {
			return fmt.Errorf("parsing serveload rows in %s: %w", path, err)
		}
	}
	row := serveLoadRow{
		Name:        fmt.Sprintf("ServeLoad/replicas=%d,subs=%d", rep.Replicas, rep.Subscribers),
		Replicas:    rep.Replicas,
		Subscribers: rep.Subscribers,
		DurationS:   rep.Elapsed.Seconds(),
		Events:      rep.Events,
		RateEvS:     rep.Rate(),
		Errors:      rep.Errors,
		P50Us:       rep.P50.Microseconds(),
		P95Us:       rep.P95.Microseconds(),
		P99Us:       rep.P99.Microseconds(),
		MaxUs:       rep.Max.Microseconds(),
	}
	replaced := false
	for i := range rows {
		if rows[i].Name == row.Name {
			rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		rows = append(rows, row)
	}
	enc, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	doc["serveload"] = enc

	final, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(final, '\n'), 0o644)
}
