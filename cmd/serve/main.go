// Command serve is the alert gateway: it runs the full surveillance
// pipeline over a live feed (or an internal simulation) and serves the
// recognized complex events over HTTP — a Server-Sent Events stream
// with per-subscriber filters, snapshot queries over the tracker and
// the trip store, and a /healthz covering the whole ingest path. This
// is the paper's "alerts to authorities" edge (Fig. 1) turned into a
// serving tier: many consumers, none of which can stall recognition.
//
//	serve -feed 127.0.0.1:4001 -addr :8080      # against cmd/feed
//	serve -vessels 150 -hours 3 -speedup 600    # self-contained
//
//	curl -N 'http://localhost:8080/events?ce=illegalShipping'
//	curl 'http://localhost:8080/vessels' | head
//	curl 'http://localhost:8080/healthz'
//	curl 'http://localhost:8080/metrics'
//
// With -checkpoint-dir the gateway is crash-safe: pipeline and hub
// state are checkpointed atomically every -checkpoint-every slides and
// once more on SIGINT/SIGTERM; a restart restores the newest valid
// checkpoint, resumes the feed from its cursor, and continues the
// envelope sequence exactly where it stopped, so SSE clients
// reconnecting with Last-Event-ID see every alert exactly once.
//
// With -alert-log the gateway appends every published envelope to a
// segmented durable log (CRC-framed, fsync'd) before any subscriber
// sees it. Stateless replicas then serve the same stream from the log
// alone:
//
//	serve -alert-log /var/lib/maritime/alerts -addr :8080          # writer
//	serve -replica -alert-log /var/lib/maritime/alerts -addr :8081 # replica
//	serve -replica -alert-log /var/lib/maritime/alerts -addr :8082 # another
//
// Replicas tail the log, re-publish under the log-global sequence
// numbers, and answer /events with full Last-Event-ID replay — kill
// one mid-stream and reconnect to another with the last id: every
// alert arrives exactly once.
//
// With -debug-addr a sidecar listener additionally serves /metrics and
// net/http/pprof on an address that can stay private to operators.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/alertlog"
	"repro/internal/analytics"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/supervise"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		live    = flag.String("feed", "", "consume a live feed at this address (see cmd/feed); empty = simulate internally")
		vessels = flag.Int("vessels", 300, "fleet size (must match the feed's world when -feed is used)")
		hours   = flag.Float64("hours", 6, "simulated duration (internal runs only)")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		areas   = flag.Int("areas", 35, "areas of interest")
		speedup = flag.Float64("speedup", 600, "time acceleration of the internal feed (0 = as fast as possible)")
		window  = flag.Duration("window", time.Hour, "window range ω")
		slide   = flag.Duration("slide", 10*time.Minute, "window slide β")
		procs   = flag.Int("procs", 1, "partition CE recognition across this many parallel recognizers")
		shards  = flag.Int("shards", 0, "mobility-tracker shards (0 = one per CPU, 1 = serial)")

		watchdog  = flag.Duration("watchdog", 5*time.Second, "per-slide recognition budget (0 = off)")
		selfHeal  = flag.Bool("self-heal", true, "recover panics and wedged partitions by quarantine-and-restore instead of crashing")
		degrade   = flag.Bool("degrade", true, "shed work under overload (defer archival → instantaneous-only recognition → shed stationary vessels) and climb back when healthy")
		degSlide  = flag.Duration("degrade-slide-high", 0, "per-slide cost above which the pipeline degrades (0 = 80% of -slide)")
		degDepth  = flag.Int("degrade-depth-high", 0, "ingest-backlog depth above which the pipeline degrades (0 = 3/4 of -ingest-buffer)")
		ingest    = flag.Int("ingest-buffer", 8192, "bounded ingest buffer, in fixes (0 = unbuffered)")
		ring      = flag.Int("ring", 1024, "alert-history retention for replay and /alerts, in alerts")
		subQueue  = flag.Int("sub-queue", 256, "per-subscriber queue bound, in alerts (drop-oldest)")
		debug     = flag.String("debug-addr", "", "sidecar listener for /metrics and /debug/pprof (empty = off; /metrics is always on the main address)")
		verbose   = flag.Bool("v", false, "log subscriber connects/disconnects")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory for crash-safe restart (empty = off)")
		ckptEvery = flag.Int("checkpoint-every", 6, "slides between checkpoints")
		pairwise  = flag.Bool("pairwise", true, "run the cross-vessel analytics tier (rendezvous, dark gap linking, collision screening)")

		logDir      = flag.String("alert-log", "", "durable alert-log directory (empty = off); the writer appends, replicas tail")
		replicaMode = flag.Bool("replica", false, "serve as a stateless replica tailing -alert-log (no pipeline)")
		replicaName = flag.String("replica-name", "", "replica identity for /healthz and metrics labels (default: the listen address)")
		logSegBytes = flag.Int64("log-segment-bytes", 1<<20, "alert-log segment rotation threshold, in bytes")
		logKeep     = flag.Int("log-keep", 8, "alert-log segments retained (older ones are pruned)")
	)
	flag.Parse()

	if *replicaMode {
		if *logDir == "" {
			log.Fatal("-replica requires -alert-log")
		}
		name := *replicaName
		if name == "" {
			name = *addr
		}
		runReplica(*addr, *logDir, name, *ring, *subQueue, *verbose)
		return
	}

	// The static world knowledge is regenerated from the seed; when
	// consuming cmd/feed, -seed/-vessels/-areas must match its flags.
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	// buf is assigned once the ingest path is built (before the pipeline
	// starts sliding); the degradation ladder reads its backlog.
	var buf *stream.IngestBuffer
	sysCfg := core.Config{
		Window:          stream.WindowSpec{Range: *window, Slide: *slide},
		Tracker:         tracker.DefaultParams(),
		Recognition:     maritime.Config{Window: *window},
		Processors:      *procs,
		TrackerShards:   *shards,
		WatchdogTimeout: *watchdog,
		SelfHeal:        *selfHeal,
	}
	if *pairwise {
		sysCfg.Analytics = &analytics.Config{EnableCollision: true}
	}
	if *degrade {
		spec := &core.DegradeSpec{SlideHigh: *degSlide, DepthHigh: *degDepth}
		if spec.SlideHigh <= 0 {
			spec.SlideHigh = *slide * 8 / 10
		}
		if spec.DepthHigh <= 0 && *ingest > 0 {
			spec.DepthHigh = *ingest * 3 / 4
		}
		spec.DepthFunc = func() int {
			if buf == nil {
				return 0
			}
			return buf.Pending()
		}
		sysCfg.Degrade = spec
	}
	sys := core.NewSystem(sysCfg, vesselsReg, areasReg, ports)

	// The supervisor drives quarantine→restore→replay→re-admit: it polls
	// after every slide (so repairs land between slides) and, once the
	// run context exists, ticks in the background in case the stream goes
	// quiet while a target is down.
	var sup *supervise.Supervisor
	if *selfHeal {
		sup = supervise.New(sys, supervise.Policy{})
		sup.SetLogger(log.Printf)
		sys.OnSlideEnd(func(core.SlideReport) { sup.Poll() })
	}

	// One registry covers every tier: pipeline stage timings, hub
	// fan-out, feed transport, ingest buffer, checkpointing and the Go
	// runtime all land in the same /metrics exposition.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	sys.RegisterMetrics(reg)

	// Crash safety: restore pipeline and hub state before the gateway
	// starts serving or the pipeline touches the stream.
	var mgr *checkpoint.Manager
	var restored *checkpoint.State
	if *ckptDir != "" {
		var err error
		mgr, err = checkpoint.NewManager(checkpoint.Options{Dir: *ckptDir})
		if err != nil {
			log.Fatal(err)
		}
		mgr.RegisterMetrics(reg)
		restored, err = mgr.RestoreNewest()
		if err != nil {
			log.Printf("checkpoint: skipped invalid files: %v", err)
		}
		if restored != nil {
			if err := sys.RestoreSnapshot(restored.System); err != nil {
				log.Fatalf("checkpoint: restore: %v", err)
			}
			log.Printf("restored checkpoint: %d slides, query %s", restored.Slides, restored.Query.Format(time.RFC3339))
		}
	}

	// The durable alert log opens (and recovers any torn tail) before the
	// hub exists, so the sequence floor below sees the post-recovery tail.
	var alog *alertlog.Log
	if *logDir != "" {
		var err error
		alog, err = alertlog.Open(*logDir, alertlog.Options{SegmentBytes: *logSegBytes, KeepSegments: *logKeep})
		if err != nil {
			log.Fatalf("alert-log: %v", err)
		}
		defer alog.Close()
		alog.RegisterMetrics(reg)
		st := alog.Stats()
		log.Printf("alert-log %s: %d segments, seq %d..%d (%d records truncated on recovery)",
			*logDir, st.Segments, st.FirstSeq, st.LastSeq, st.Truncations)
	}

	opts := serve.Options{RingSize: *ring, SubscriberQueue: *subQueue, Metrics: reg}
	if *verbose {
		opts.Logf = log.Printf
	}
	gw := serve.New(sys, opts)
	if restored != nil && restored.Hub != nil {
		// The restored hub continues the envelope sequence, so the slides
		// replayed below re-publish their alerts under the same sequence
		// numbers and reconnecting SSE clients deduplicate them.
		gw.Hub().Restore(*restored.Hub)
	}
	if alog != nil {
		if restored == nil || restored.Hub == nil {
			// Fresh process over an existing log (e.g. checkpointing is
			// off): continue the log's sequence rather than restarting at 1
			// and colliding with durable records.
			if last := alog.LastSeq(); last > 0 {
				gw.Hub().Restore(serve.HubSnapshot{Seq: last, Published: last})
			}
		}
		// Replayed slides re-publish under already-durable sequence
		// numbers; the log's idempotent append skips them, so the log
		// stays duplicate-free across crash/restart.
		gw.Hub().AttachLog(alog)
	}

	var replayGap atomic.Int64
	if restored != nil {
		sys.AddHealthSource(func() core.Health {
			return core.Health{ReplayGapSlides: int(replayGap.Load())}
		})
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if sup != nil {
		go sup.Run(ctx, time.Second)
	}

	feedAddr := *live
	if feedAddr == "" {
		// Self-contained mode: an in-process feed server replays the
		// simulation over loopback, so the ingest path (reconnecting
		// client, bounded buffer, health accounting) is the same either
		// way — including the RESUME handshake a restored run performs.
		srv := &feed.Server{Fixes: sim.Run(), Speedup: *speedup, HandshakeWait: 2 * time.Second}
		addrCh := make(chan net.Addr, 1)
		go func() {
			if err := srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh); err != nil {
				log.Printf("internal feed: %v", err)
			}
		}()
		feedAddr = (<-addrCh).String()
		log.Printf("internal feed on %s (%gx)", feedAddr, *speedup)
	}

	var client *feed.ReconnectingClient
	var err error
	if restored != nil {
		client, err = feed.DialReconnectingFrom(feedAddr, feed.DefaultRetryPolicy(), restored.Cursor)
	} else {
		client, err = feed.DialReconnecting(feedAddr, feed.DefaultRetryPolicy())
	}
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(reg)
	var src stream.FixSource = client
	if *ingest > 0 {
		buf = stream.NewIngestBuffer(client, *ingest)
		defer buf.Close()
		buf.RegisterMetrics(reg)
		src = buf
	}
	sys.AddHealthSource(core.LiveHealthSource(client, buf))

	if *debug != "" {
		// The debug sidecar binds its own listener so pprof and metrics
		// scrapes never share the gateway's address or its middleware.
		go func() {
			log.Printf("debug on http://%s  (/metrics /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, obs.DebugMux(reg)); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	go func() {
		log.Printf("gateway on http://%s  (endpoints: /events /alerts /vessels /trips /od /report /healthz /metrics)", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// Graceful shutdown: closing the client ends Scan, the pipeline loop
	// finishes its in-flight slide, checkpoints, and exits.
	go func() {
		<-ctx.Done()
		client.Close()
	}()

	// The pipeline loop: one goroutine drives recognition; alerts reach
	// subscribers through the hub without ever blocking this loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var batcher *stream.Batcher
		var cur feed.Cursor
		baseSlides := 0
		if restored != nil {
			batcher = stream.NewBatcherFrom(src, *slide, restored.Query)
			cur = restored.Cursor.Clone()
			baseSlides = restored.Slides
		} else {
			batcher = stream.NewBatcher(src, *slide)
		}
		// Checkpoints capture pipeline and hub together under Quiesce, so
		// no slide is in flight and the two are mutually consistent.
		saveCkpt := func(q time.Time, slides int) {
			var st *checkpoint.State
			gw.Quiesce(func() {
				snap, err := sys.Snapshot()
				if err != nil {
					log.Printf("checkpoint: %v", err)
					return
				}
				hub := gw.Hub().Snapshot()
				st = &checkpoint.State{Query: q, System: snap, Cursor: cur.Clone(), Hub: &hub, Slides: slides}
			})
			if st == nil {
				return
			}
			if err := mgr.Save(st); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}
		var slides, alerts int
		var last, firstTraffic time.Time
		for {
			b, ok := batcher.Next()
			if !ok || ctx.Err() != nil {
				// On interrupt the batch in flight may have been truncated
				// by the closing client; discard it so the final checkpoint
				// sits on a complete-slide boundary and the cursor replays
				// it whole.
				break
			}
			rep := gw.Process(b)
			for _, f := range b.Fixes {
				cur.Note(f)
			}
			slides++
			alerts += len(rep.Alerts)
			last = rep.Query
			if restored != nil && firstTraffic.IsZero() && len(b.Fixes) > 0 {
				firstTraffic = b.Query
				replayGap.Store(int64(checkpoint.ReplayGapSlides(restored.Query, firstTraffic, *slide)))
			}
			if mgr != nil && *ckptEvery > 0 && slides%*ckptEvery == 0 {
				saveCkpt(rep.Query, baseSlides+slides)
			}
		}
		if err := src.Err(); err != nil {
			log.Printf("feed: %v", err)
		}
		if mgr != nil {
			// The final checkpoint precedes Drain: drained trips are
			// final, a resumed run must not re-finalize them.
			if !last.IsZero() {
				saveCkpt(last, baseSlides+slides)
			}
			mgr.NoteReplaySkipped(client.NetStats().ResumeSkipped)
		}
		if ctx.Err() != nil {
			// Interrupted: state is checkpointed for resumption; skip
			// Drain so trips stay replayable.
			log.Printf("interrupted after %d slides; state checkpointed, restart to resume", baseSlides+slides)
			return
		}
		if !last.IsZero() {
			gw.Drain(last)
		}
		gw.StreamEnded()
		log.Printf("stream ended after %d slides, %d alerts published; still serving snapshots (Ctrl-C to quit)",
			slides, alerts)
		log.Printf("health: %s", sys.Health())
	}()

	// Serve until interrupted; the gateway keeps answering snapshot and
	// history queries after the stream ends.
	<-ctx.Done()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		log.Printf("pipeline did not stop in time; shutting down anyway")
	}
	// Close the hub first so SSE pump loops end their responses cleanly
	// (EOF, not a reset) and Shutdown is not held up by streaming
	// subscribers.
	gw.Hub().Close()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
	defer stop()
	_ = httpSrv.Shutdown(shutdownCtx)
	st := gw.Hub().Totals()
	log.Printf("fan-out: %d published, %d delivered, %d dropped across %d live subscribers",
		st.Published, st.Delivered, st.Dropped, st.Subscribers)
}

// runReplica serves the alert stream from the durable log alone: no
// pipeline, no writer state — a hub fed by a log tailer plus the same
// SSE protocol as the writer gateway. Any number of replicas can tail
// the same directory; each is independently killable.
func runReplica(addr, logDir, name string, ring, subQueue int, verbose bool) {
	log.SetPrefix("serve[" + name + "]: ")
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	hub := serve.NewHub(ring)
	hub.AttachReplay(alertlog.OpenReplay(logDir))
	hub.RegisterMetrics(reg)

	tailer := alertlog.NewTailer(logDir, 0, hub.PublishEnvelopes, alertlog.TailOptions{})
	tailer.RegisterMetrics(reg, name)

	opt := serve.ReplicaOptions{
		Name:            name,
		SubscriberQueue: subQueue,
		Metrics:         reg,
		Info: func() serve.ReplicaInfo {
			st := tailer.Stats()
			return serve.ReplicaInfo{Name: name, Applied: st.Applied, Lag: tailer.Lag(), Skipped: st.Skipped}
		},
	}
	if verbose {
		opt.Logf = log.Printf
	}
	rp := serve.NewReplica(hub, opt)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		tailer.Run(ctx)
	}()

	httpSrv := &http.Server{Addr: addr, Handler: rp.Handler()}
	go func() {
		log.Printf("replica on http://%s tailing %s  (endpoints: /events /alerts /healthz /metrics)", addr, logDir)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	<-tailDone
	hub.Close()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
	defer stop()
	_ = httpSrv.Shutdown(shutdownCtx)
	st := hub.Totals()
	ts := tailer.Stats()
	log.Printf("replica done: applied seq %d (%d records, %d skipped), %d delivered, %d dropped",
		ts.Applied, ts.Records, ts.Skipped, st.Delivered, st.Dropped)
}
