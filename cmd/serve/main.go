// Command serve is the alert gateway: it runs the full surveillance
// pipeline over a live feed (or an internal simulation) and serves the
// recognized complex events over HTTP — a Server-Sent Events stream
// with per-subscriber filters, snapshot queries over the tracker and
// the trip store, and a /healthz covering the whole ingest path. This
// is the paper's "alerts to authorities" edge (Fig. 1) turned into a
// serving tier: many consumers, none of which can stall recognition.
//
//	serve -feed 127.0.0.1:4001 -addr :8080      # against cmd/feed
//	serve -vessels 150 -hours 3 -speedup 600    # self-contained
//
//	curl -N 'http://localhost:8080/events?ce=illegalShipping'
//	curl 'http://localhost:8080/vessels' | head
//	curl 'http://localhost:8080/healthz'
//	curl 'http://localhost:8080/metrics'
//
// With -debug-addr a sidecar listener additionally serves /metrics and
// net/http/pprof on an address that can stay private to operators.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		live    = flag.String("feed", "", "consume a live feed at this address (see cmd/feed); empty = simulate internally")
		vessels = flag.Int("vessels", 300, "fleet size (must match the feed's world when -feed is used)")
		hours   = flag.Float64("hours", 6, "simulated duration (internal runs only)")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		areas   = flag.Int("areas", 35, "areas of interest")
		speedup = flag.Float64("speedup", 600, "time acceleration of the internal feed (0 = as fast as possible)")
		window  = flag.Duration("window", time.Hour, "window range ω")
		slide   = flag.Duration("slide", 10*time.Minute, "window slide β")
		procs   = flag.Int("procs", 1, "partition CE recognition across this many parallel recognizers")
		shards  = flag.Int("shards", 0, "mobility-tracker shards (0 = one per CPU, 1 = serial)")

		watchdog = flag.Duration("watchdog", 5*time.Second, "per-slide recognition budget (0 = off)")
		ingest   = flag.Int("ingest-buffer", 8192, "bounded ingest buffer, in fixes (0 = unbuffered)")
		ring     = flag.Int("ring", 1024, "alert-history retention for replay and /alerts, in alerts")
		subQueue = flag.Int("sub-queue", 256, "per-subscriber queue bound, in alerts (drop-oldest)")
		debug    = flag.String("debug-addr", "", "sidecar listener for /metrics and /debug/pprof (empty = off; /metrics is always on the main address)")
		verbose  = flag.Bool("v", false, "log subscriber connects/disconnects")
	)
	flag.Parse()

	// The static world knowledge is regenerated from the seed; when
	// consuming cmd/feed, -seed/-vessels/-areas must match its flags.
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	sys := core.NewSystem(core.Config{
		Window:          stream.WindowSpec{Range: *window, Slide: *slide},
		Tracker:         tracker.DefaultParams(),
		Recognition:     maritime.Config{Window: *window},
		Processors:      *procs,
		TrackerShards:   *shards,
		WatchdogTimeout: *watchdog,
	}, vesselsReg, areasReg, ports)

	// One registry covers every tier: pipeline stage timings, hub
	// fan-out, feed transport, ingest buffer and the Go runtime all
	// land in the same /metrics exposition.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	sys.RegisterMetrics(reg)

	opts := serve.Options{RingSize: *ring, SubscriberQueue: *subQueue, Metrics: reg}
	if *verbose {
		opts.Logf = log.Printf
	}
	gw := serve.New(sys, opts)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	feedAddr := *live
	if feedAddr == "" {
		// Self-contained mode: an in-process feed server replays the
		// simulation over loopback, so the ingest path (reconnecting
		// client, bounded buffer, health accounting) is the same either
		// way.
		srv := &feed.Server{Fixes: sim.Run(), Speedup: *speedup, HandshakeWait: 2 * time.Second}
		addrCh := make(chan net.Addr, 1)
		go func() {
			if err := srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh); err != nil {
				log.Printf("internal feed: %v", err)
			}
		}()
		feedAddr = (<-addrCh).String()
		log.Printf("internal feed on %s (%gx)", feedAddr, *speedup)
	}

	client, err := feed.DialReconnecting(feedAddr, feed.DefaultRetryPolicy())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(reg)
	var src stream.FixSource = client
	var buf *stream.IngestBuffer
	if *ingest > 0 {
		buf = stream.NewIngestBuffer(client, *ingest)
		defer buf.Close()
		buf.RegisterMetrics(reg)
		src = buf
	}
	sys.AddHealthSource(core.LiveHealthSource(client, buf))

	if *debug != "" {
		// The debug sidecar binds its own listener so pprof and metrics
		// scrapes never share the gateway's address or its middleware.
		go func() {
			log.Printf("debug on http://%s  (/metrics /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, obs.DebugMux(reg)); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	go func() {
		log.Printf("gateway on http://%s  (endpoints: /events /alerts /vessels /trips /od /report /healthz /metrics)", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// The pipeline loop: one goroutine drives recognition; alerts reach
	// subscribers through the hub without ever blocking this loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		batcher := stream.NewBatcher(src, *slide)
		var slides, alerts int
		var last time.Time
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			rep := gw.Process(b)
			slides++
			alerts += len(rep.Alerts)
			last = rep.Query
		}
		if err := src.Err(); err != nil {
			log.Printf("feed: %v", err)
		}
		if !last.IsZero() {
			gw.Drain(last)
		}
		gw.StreamEnded()
		log.Printf("stream ended after %d slides, %d alerts published; still serving snapshots (Ctrl-C to quit)",
			slides, alerts)
		log.Printf("health: %s", sys.Health())
	}()

	// Serve until interrupted; the gateway keeps answering snapshot and
	// history queries after the stream ends.
	<-ctx.Done()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 2*time.Second)
	defer stop()
	_ = httpSrv.Shutdown(shutdownCtx)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	st := gw.Hub().Totals()
	log.Printf("fan-out: %d published, %d delivered, %d dropped across %d live subscribers",
		st.Published, st.Delivered, st.Dropped, st.Subscribers)
}
