// Command analytics demonstrates the offline trajectory analytics of
// the paper's §3.3: it runs the pipeline over a simulated fleet to
// populate the moving-object store, then prints travel statistics,
// origin–destination matrices, frequent routes ("corridors"),
// spatiotemporal trip clusters, idle periods at dock, and per-period
// aggregates. Optionally the store is persisted to (or restored from)
// a snapshot file, exercising the paper's disk-backed archive.
//
// Usage:
//
//	analytics -vessels 400 -hours 24
//	analytics -vessels 400 -hours 24 -save mod.snapshot
//	analytics -load mod.snapshot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/mod"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analytics: ")

	var (
		vessels = flag.Int("vessels", 400, "fleet size")
		hours   = flag.Float64("hours", 24, "simulated duration")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		save    = flag.String("save", "", "persist the store to this snapshot file")
		load    = flag.String("load", "", "restore the store from this snapshot file instead of simulating")
		k       = flag.Int("clusters", 4, "trip clusters to compute")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	_, _, ports := core.AdaptWorld(sim)

	var store *mod.MOD
	if *load != "" {
		store = mod.New(ports)
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.RestoreSnapshot(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("restored %d trips (%d points staged) from %s",
			len(store.Trips()), store.StagedCount(), *load)
	} else {
		log.Printf("simulating %d vessels for %s ...", *vessels, cfg.Duration)
		fixes := sim.Run()
		sys := core.NewSystem(core.Config{
			Window:             stream.WindowSpec{Range: 6 * time.Hour, Slide: time.Hour},
			Tracker:            tracker.DefaultParams(),
			DisableRecognition: true,
		}, nil, nil, ports)
		sys.RunAll(stream.NewBatcher(stream.NewSliceSource(fixes), time.Hour))
		store = sys.Store()
	}

	fmt.Println("=== Table 4 statistics ===")
	store.Table4Stats().Write(os.Stdout)

	fmt.Println("\n=== Frequent routes (corridors) ===")
	for i, r := range store.FrequentRoutes(2) {
		if i >= 8 {
			break
		}
		origin := r.Pair.Origin
		if origin == "" {
			origin = "?"
		}
		fmt.Printf("  %-14s → %-14s %d trips\n", origin, r.Pair.Dest, r.Count)
	}

	fmt.Println("\n=== Busiest vessels ===")
	stats := store.VesselStats()
	printed := 0
	for _, t := range store.Trips() {
		s := stats[t.MMSI]
		if s.Trips < 3 || printed >= 5 {
			continue
		}
		delete(stats, t.MMSI)
		fmt.Printf("  %d: %d trips, %.0f km, %s at sea, ports %v\n",
			s.MMSI, s.Trips, s.DistanceMeters/1000, s.TravelTime.Round(time.Minute), s.VisitedPorts)
		printed++
	}

	fmt.Println("\n=== Idle periods at dock ===")
	idles := store.IdlePeriods()
	fmt.Printf("  %d docked intervals", len(idles))
	if len(idles) > 0 {
		var total time.Duration
		for _, p := range idles {
			total += p.Duration()
		}
		fmt.Printf(", mean %s", (total / time.Duration(len(idles))).Round(time.Minute))
	}
	fmt.Println()

	fmt.Println("\n=== Trips per day ===")
	for _, p := range store.AggregateTrips(mod.ByDay) {
		fmt.Printf("  %s: %d trips by %d vessels, %.0f km total\n",
			p.Period.Format("2006-01-02"), p.Trips, p.Vessels, p.DistanceMeters/1000)
	}

	fmt.Println("\n=== Vessels traveling together ===")
	pairs := store.TravelingTogether(1500, time.Hour)
	if len(pairs) == 0 {
		fmt.Println("  none detected")
	}
	for i, c := range pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d & %d for %s (max separation %.0f m)\n",
			c.A.MMSI, c.B.MMSI, c.Overlap().Round(time.Minute), c.MaxDist)
	}

	if trips := store.Trips(); len(trips) >= *k {
		fmt.Printf("\n=== Spatiotemporal clusters (k=%d) ===\n", *k)
		clusters := mod.TripClusters(trips, mod.ClusterOptions{
			K: *k, TemporalWeight: 10, Seed: *seed,
		})
		for i, c := range clusters {
			fmt.Printf("  cluster %d: %d trips around %s (departs ~%s)\n",
				i+1, len(c.Trips), c.Medoid, c.Medoid.Start.Format("15:04"))
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := store.SaveSnapshot(f); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved snapshot to %s", *save)
	}
}
