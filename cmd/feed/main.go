// Command feed serves a simulated AIS fleet as a live NMEA stream over
// TCP, standing in for the live Aegean feed the paper planned to
// integrate (§7). Clients (e.g. `recognize -feed <addr>`) receive
// timestamped AIVDM sentences paced at the configured time
// acceleration; resuming clients (feed.ReconnectingClient) are replayed
// only what they have not yet seen.
//
// With -chaos the stream is served through a deterministic
// fault-injection proxy (internal/faults), so the fault-tolerance layer
// can be exercised end to end from the command line:
//
//	feed -addr :4001 -vessels 300 -hours 6 -speedup 600 \
//	     -chaos -chaos-resets 500,1500 -chaos-corrupt-every 200
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/fleetsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feed: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:4001", "listen address")
		vessels = flag.Int("vessels", 300, "fleet size")
		hours   = flag.Float64("hours", 6, "simulated duration")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		speedup = flag.Float64("speedup", 600, "time acceleration (0 = as fast as possible)")
		hsWait  = flag.Duration("handshake-wait", 2*time.Second, "how long to wait for a RESUME handshake (0 disables resume)")

		chaos        = flag.Bool("chaos", false, "serve through a fault-injection proxy")
		chaosSeed    = flag.Int64("chaos-seed", 42, "fault schedule seed")
		chaosResets  = flag.String("chaos-resets", "500,1500", "comma-separated line counts after which successive connections are RST")
		chaosTrunc   = flag.Bool("chaos-truncate", true, "deliver half of the in-flight line before each reset")
		chaosCorrupt = flag.Int("chaos-corrupt-every", 200, "corrupt one byte of every Nth line (0 = off)")
		chaosDup     = flag.Int("chaos-duplicate-every", 0, "send every Nth line twice (0 = off)")
	)
	flag.Parse()
	resets := parseResets(*chaosResets) // validate before the (slow) simulation

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	log.Printf("replaying %d fixes from %d vessels at %gx", len(fixes), *vessels, *speedup)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := &feed.Server{Fixes: fixes, Speedup: *speedup, Logf: log.Printf, HandshakeWait: *hsWait}
	addrCh := make(chan net.Addr, 1)
	go func() {
		a := <-addrCh
		log.Printf("listening on %s", a)
	}()

	if *chaos {
		// The real server moves to an ephemeral loopback port; clients
		// talk to the proxy at the public address.
		upstreamCh := make(chan net.Addr, 1)
		go func() {
			if err := srv.ListenAndServe(ctx, "127.0.0.1:0", upstreamCh); err != nil {
				log.Fatal(err)
			}
		}()
		proxy := &faults.Proxy{
			Upstream: (<-upstreamCh).String(),
			Plan: faults.Plan{
				Seed:            *chaosSeed,
				ResetAfterLines: resets,
				TruncateOnReset: *chaosTrunc,
				CorruptEvery:    *chaosCorrupt,
				DuplicateEvery:  *chaosDup,
			},
			Logf: log.Printf,
		}
		log.Printf("chaos proxy armed: %+v", proxy.Plan)
		if err := proxy.ListenAndServe(ctx, *addr, addrCh); err != nil {
			log.Fatal(err)
		}
		log.Printf("faults injected: %+v", proxy.Stats())
	} else if err := srv.ListenAndServe(ctx, *addr, addrCh); err != nil {
		log.Fatal(err)
	}
	log.Printf("server stats: %+v", srv.Stats())
}

// parseResets turns "500,1500" into per-connection reset line counts.
func parseResets(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("bad -chaos-resets entry %q: %v", part, err)
		}
		out = append(out, n)
	}
	return out
}
