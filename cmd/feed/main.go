// Command feed serves a simulated AIS fleet as a live NMEA stream over
// TCP, standing in for the live Aegean feed the paper planned to
// integrate (§7). Clients (e.g. `recognize -feed <addr>`) receive
// timestamped AIVDM sentences paced at the configured time
// acceleration.
//
// Usage:
//
//	feed -addr :4001 -vessels 300 -hours 6 -speedup 600
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/feed"
	"repro/internal/fleetsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feed: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:4001", "listen address")
		vessels = flag.Int("vessels", 300, "fleet size")
		hours   = flag.Float64("hours", 6, "simulated duration")
		seed    = flag.Int64("seed", 1, "world/fleet seed")
		speedup = flag.Float64("speedup", 600, "time acceleration (0 = as fast as possible)")
	)
	flag.Parse()

	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	log.Printf("replaying %d fixes from %d vessels at %gx", len(fixes), *vessels, *speedup)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := &feed.Server{Fixes: fixes, Speedup: *speedup, Logf: log.Printf}
	addrCh := make(chan net.Addr, 1)
	go func() {
		a := <-addrCh
		log.Printf("listening on %s", a)
	}()
	if err := srv.ListenAndServe(ctx, *addr, addrCh); err != nil {
		log.Fatal(err)
	}
}
