// Command benchserve measures the serving tier and writes the results
// as a JSON artifact (BENCH_serve.json), so the fan-out numbers that
// justified the hub's publish lock-scope change stay checked in next to
// the code and can be regenerated with one make target.
//
// Two benchmark families run through testing.Benchmark:
//
//   - HubFanout/subs=N: one Publish of a slide's worth of alerts
//     against N live drained subscribers — the serving-tier price of a
//     slide, mirroring BenchmarkHubFanout in the repo's bench suite.
//   - PipelineStream: a full simulated stream through ProcessBatch,
//     reported both per run and per slide — the producer side that the
//     hub must never block.
//
// The artifact embeds the pre-fix fan-out baseline (hub registry lock
// held across the ring push and every subscriber offer) so a regression
// is visible by diffing the artifact, without re-building old commits.
//
//	go run ./cmd/benchserve -out BENCH_serve.json
//	go run ./cmd/benchserve -quick   # CI smoke: small fan-outs only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// baselineNsPerOp is the hub fan-out measured on this benchmark before
// the Publish lock-scope fix, when the hub held its registry lock
// across the ring push and every subscriber offer. Kept as reference
// data in the artifact; see DESIGN.md "Observability".
var baselineNsPerOp = map[string]float64{
	"HubFanout/subs=1":     904,
	"HubFanout/subs=100":   84660,
	"HubFanout/subs=10000": 24841470,
}

// result is one benchmark row of the artifact.
type result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BaselineNsOp   float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBase  float64 `json:"speedup_vs_baseline,omitempty"`
	NsPerSlide     float64 `json:"ns_per_slide,omitempty"`
	SlidesPerRun   int     `json:"slides_per_run,omitempty"`
	DeliveredPerOp float64 `json:"delivered_per_op,omitempty"`
	DroppedPerOp   float64 `json:"dropped_per_op,omitempty"`
}

type artifact struct {
	GeneratedBy  string   `json:"generated_by"`
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	CPUs         int      `json:"cpus"`
	BaselineNote string   `json:"baseline_note"`
	Benchmarks   []result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchserve: ")
	out := flag.String("out", "BENCH_serve.json", "artifact path (empty or \"-\" = stdout)")
	quick := flag.Bool("quick", false, "CI smoke mode: small fan-outs only, skip the pipeline run")
	flag.Parse()

	fanouts := []int{1, 100, 10000}
	if *quick {
		fanouts = []int{1, 100}
	}

	art := artifact{
		GeneratedBy:  "cmd/benchserve",
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		BaselineNote: "baseline_ns_per_op measured before the hub Publish lock-scope fix (registry lock held across ring push and subscriber offers)",
	}

	for _, subs := range fanouts {
		art.Benchmarks = append(art.Benchmarks, runFanout(fmt.Sprintf("HubFanout/subs=%d", subs), subs, false))
	}
	filteredSubs := 1000
	if *quick {
		filteredSubs = 100
	}
	art.Benchmarks = append(art.Benchmarks,
		runFanout(fmt.Sprintf("HubFanoutFiltered/subs=%d", filteredSubs), filteredSubs, true))

	if !*quick {
		log.Printf("running PipelineStream")
		art.Benchmarks = append(art.Benchmarks, benchPipeline())
	}

	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runFanout measures one Publish of a slide's worth of alerts against
// subs live subscribers. The consumers keep pace with the publisher:
// every few publishes the outstanding (offered but not yet consumed)
// backlog is checked off the clock and the publisher waits for the
// drain before continuing, so the row measures the delivery path, not
// the drop-oldest overflow path — delivered_per_op must dominate
// dropped_per_op for the number to mean anything. With filtered true,
// every subscriber carries a one-MMSI filter (spread over 40 vessels),
// exercising the compiled matcher's O(matched) fan-out.
func runFanout(name string, subs int, filtered bool) result {
	log.Printf("running %s", name)
	const mmsiSpread = 40
	alerts := benchAlerts(4)
	// Envelopes one publish delivers across all subscribers: with
	// filters, each alert reaches only the subscribers on its vessel.
	perPublish := int64(subs * len(alerts))
	if filtered {
		perPublish = 0
		for i := 0; i < subs; i++ {
			if i%mmsiSpread < len(alerts) {
				perPublish++
			}
		}
	}
	var delivered, dropped, publishes int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		hub := serve.NewHub(1024)
		var consumed atomic.Int64
		var wg sync.WaitGroup
		sl := make([]*serve.Subscriber, subs)
		for i := range sl {
			f := serve.Filter{}
			if filtered {
				f.MMSI = map[uint32]struct{}{uint32(237000101 + i%mmsiSpread): {}}
			}
			sl[i] = hub.Subscribe(f, 8192)
			wg.Add(1)
			go func(s *serve.Subscriber) {
				defer wg.Done()
				for {
					if _, ok := s.Next(); !ok {
						return
					}
					consumed.Add(1)
				}
			}(sl[i])
		}
		base := time.Date(2015, 3, 15, 12, 0, 0, 0, time.UTC)
		// How far the consumers may fall behind before the publisher
		// pauses: far below the queue bound, so nothing ever drops.
		maxOutstanding := int64(subs) * 64
		if maxOutstanding < 4096 {
			maxOutstanding = 4096
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.Publish(base.Add(time.Duration(i)*time.Second), alerts)
			if i%64 == 63 {
				if int64(i+1)*perPublish-consumed.Load() > maxOutstanding {
					b.StopTimer()
					for int64(i+1)*perPublish-consumed.Load() > maxOutstanding/2 {
						time.Sleep(50 * time.Microsecond)
					}
					b.StartTimer()
				}
			}
		}
		b.StopTimer()
		// Drain completely so delivered reflects every publish.
		for consumed.Load() < int64(b.N)*perPublish-int64(hub.Totals().Dropped) {
			time.Sleep(100 * time.Microsecond)
		}
		for _, s := range sl {
			s.Close()
		}
		wg.Wait()
		st := hub.Totals()
		delivered, dropped = int64(st.Delivered), int64(st.Dropped)
		publishes = int64(b.N)
	})
	row := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if publishes > 0 {
		row.DeliveredPerOp = float64(delivered) / float64(publishes)
		row.DroppedPerOp = float64(dropped) / float64(publishes)
	}
	if base, ok := baselineNsPerOp[name]; ok {
		row.BaselineNsOp = base
		if row.NsPerOp > 0 {
			row.SpeedupVsBase = base / row.NsPerOp
		}
	}
	log.Printf("  %d iters, %.0f ns/op, %.2f delivered/op, %.2f dropped/op",
		row.Iterations, row.NsPerOp, row.DeliveredPerOp, row.DroppedPerOp)
	return row
}

// benchAlerts builds a slide's worth of alerts (4, matching the bench
// suite's BenchmarkHubFanout).
func benchAlerts(n int) []maritime.Alert {
	base := time.Date(2015, 3, 15, 12, 0, 0, 0, time.UTC)
	alerts := make([]maritime.Alert, n)
	for i := range alerts {
		alerts[i] = maritime.Alert{
			CE:     maritime.CEIllegalShipping,
			AreaID: "bench-area",
			Time:   base,
			Vessel: uint32(237000101 + i),
		}
	}
	return alerts
}

// benchPipeline runs a complete simulated stream through ProcessBatch
// per iteration and reports both per-run and per-slide cost.
func benchPipeline() result {
	simCfg := fleetsim.DefaultConfig()
	simCfg.Vessels = 100
	simCfg.Duration = time.Hour
	sim := fleetsim.NewSimulator(simCfg)
	fixes := sim.Run()
	vessels, areas, ports := core.AdaptWorld(sim)
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	cfg := core.Config{
		Window:      window,
		Tracker:     tracker.DefaultParams(),
		Recognition: maritime.Config{Window: window.Range},
	}

	slides := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := core.NewSystem(cfg, vessels, areas, ports)
			batcher := stream.NewBatcher(stream.NewSliceSource(fixes), window.Slide)
			b.StartTimer()
			n := 0
			for {
				batch, ok := batcher.Next()
				if !ok {
					break
				}
				sys.ProcessBatch(batch)
				n++
			}
			slides = n
		}
	})
	row := result{
		Name:         "PipelineStream/vessels=100,hours=1",
		Iterations:   r.N,
		NsPerOp:      float64(r.NsPerOp()),
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		SlidesPerRun: slides,
	}
	if slides > 0 {
		row.NsPerSlide = row.NsPerOp / float64(slides)
	}
	log.Printf("  %d iters, %.0f ns/run over %d slides", row.Iterations, row.NsPerOp, slides)
	return row
}
