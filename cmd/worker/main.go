// Command worker runs one vessel slice of a distributed recognition
// cluster (see cmd/cluster): it consumes its slice feed from the router
// through the reconnecting client, runs mobility tracking and trajectory
// archival for its vessels, checkpoints autonomously, and ships every
// slide's critical points to the coordinator, where the merged stream is
// recognized. Recognition is disabled here by construction — several
// maritime CEs aggregate across vessels, so only the coordinator sees
// enough of the fleet to decide them.
//
//	worker -id 0 -workers 3 -vessels 300
//	worker -id 1 -workers 3 -vessels 300 -checkpoint-dir /var/lib/w1
//
// The world flags (-vessels -seed -areas -window -slide) must match the
// cluster process exactly; the coordinator rejects a Hello with a
// mismatched width. After a crash, restarting with the same
// -checkpoint-dir resumes from the newest checkpoint and RESUMEs the
// slice feed, so the coordinator sees each slide exactly once. After a
// whole-cluster restore, pass the -pin-seq the cluster process logged so
// every worker rejoins on the same manifest generation.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/tracker"
)

func main() {
	log.SetFlags(0)

	var (
		id        = flag.Int("id", 0, "slice index in [0, workers)")
		workers   = flag.Int("workers", 3, "cluster width (must match cmd/cluster)")
		router    = flag.String("router", "", "slice feed address (default 127.0.0.1:(4101+id), matching cmd/cluster)")
		uplink    = flag.String("uplink", "127.0.0.1:4200", "coordinator uplink address")
		vessels   = flag.Int("vessels", 300, "fleet size (must match the cluster's world)")
		seed      = flag.Int64("seed", 1, "world/fleet seed")
		areas     = flag.Int("areas", 35, "areas of interest")
		window    = flag.Duration("window", time.Hour, "window range ω")
		slide     = flag.Duration("slide", 10*time.Minute, "window slide β")
		shards    = flag.Int("shards", 1, "mobility-tracker shards within this worker (0 = one per CPU)")
		gridStart = flag.String("grid-start", "", "slide-grid origin (RFC 3339, required for >1 worker; e.g. the stream's first slide boundary)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory for crash-safe restart (empty = off)")
		ckptEvery = flag.Int("checkpoint-every", 6, "slides between checkpoints (grid-absolute, same cadence cluster-wide)")
		pinSeq    = flag.Uint64("pin-seq", 0, "restore exactly this checkpoint sequence (from a cluster manifest restore)")
		deadPeer  = flag.Duration("dead-peer", 10*time.Second, "declare the router dead after this much read silence (0 = never)")
		debug     = flag.String("debug-addr", "", "sidecar listener for /metrics and /debug/pprof (empty = off)")
	)
	flag.Parse()
	log.SetPrefix("worker " + strconv.Itoa(*id) + ": ")

	routerAddr := *router
	if routerAddr == "" {
		routerAddr = "127.0.0.1:" + strconv.Itoa(4101+*id)
	}

	// Every worker regenerates the identical static world from the seed;
	// the slice boundary is the MMSI hash, not the world data.
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = *vessels
	cfg.Seed = *seed
	cfg.NumAreas = *areas
	sim := fleetsim.NewSimulator(cfg)
	vesselsReg, areasReg, ports := core.AdaptWorld(sim)

	var grid time.Time
	if *gridStart != "" {
		var err error
		grid, err = time.Parse(time.RFC3339, *gridStart)
		if err != nil {
			log.Fatalf("-grid-start: %v", err)
		}
	} else if *workers > 1 {
		// Without a shared grid origin the workers batch on different
		// slide grids and the coordinator's barrier never aligns. The
		// fleetsim's grid starts at its config start time.
		grid = cfg.Start.Truncate(*slide)
		log.Printf("no -grid-start; assuming the simulated world's grid origin %s", grid.Format(time.RFC3339))
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		ID:          *id,
		Workers:     *workers,
		Router:      routerAddr,
		Coordinator: *uplink,
		System: core.Config{
			Window:        stream.WindowSpec{Range: *window, Slide: *slide},
			Tracker:       tracker.DefaultParams(),
			Recognition:   maritime.Config{Window: *window},
			TrackerShards: *shards,
		},
		Vessels:         vesselsReg,
		Areas:           areasReg,
		Ports:           ports,
		GridStart:       grid,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		PinSeq:          *pinSeq,
		DeadPeerAfter:   *deadPeer,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debug != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntime(reg)
		w.System().RegisterMetrics(reg)
		go func() {
			log.Printf("debug on http://%s  (/metrics /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, obs.DebugMux(reg)); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("slice %d/%d: feed %s, uplink %s", *id, *workers, routerAddr, *uplink)
	if err := w.Run(ctx); err != nil {
		if ctx.Err() != nil {
			log.Printf("interrupted; checkpointed state resumes on restart")
			return
		}
		log.Fatal(err)
	}
	log.Printf("slice complete: %s", w.System().Health())
}
